package server

import (
	"context"
	"encoding/json"
	"errors"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/ppdp/ppdp/internal/core"
	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/engine"
	"github.com/ppdp/ppdp/internal/jobs"
	"github.com/ppdp/ppdp/internal/metrics"
	"github.com/ppdp/ppdp/internal/policy"
	"github.com/ppdp/ppdp/internal/risk"
	"github.com/ppdp/ppdp/internal/synth"
)

// ---- datasets ----

// datasetInfo is the JSON view of a stored dataset.
type datasetInfo struct {
	Name             string    `json:"name"`
	Family           string    `json:"family,omitempty"`
	Rows             int       `json:"rows"`
	Columns          []string  `json:"columns"`
	QuasiIdentifiers []string  `json:"quasi_identifiers"`
	Sensitive        []string  `json:"sensitive"`
	Created          time.Time `json:"created"`
}

func datasetJSON(ds *storedDataset) datasetInfo {
	return datasetInfo{
		Name:             ds.name,
		Family:           ds.family,
		Rows:             ds.table.Len(),
		Columns:          ds.table.Schema().Names(),
		QuasiIdentifiers: ds.table.Schema().QuasiIdentifierNames(),
		Sensitive:        ds.table.Schema().SensitiveNames(),
		Created:          ds.created,
	}
}

// maxGenerateRows caps synthetic generation per dataset: the generators run
// synchronously and allocate in memory, so an unbounded count would let one
// request exhaust the process (uploads are bounded by MaxBodyBytes instead).
const maxGenerateRows = 1_000_000

// generateRequest is the POST /v1/datasets body: materialize one of the
// synthetic benchmark families under a registry name.
type generateRequest struct {
	Name   string `json:"name"`
	Family string `json:"family"`
	Rows   int    `json:"rows"`
	// Seed is a pointer so an explicit 0 is distinguishable from absent
	// (which defaults to 42).
	Seed *int64 `json:"seed"`
}

func (s *Server) handleGenerateDataset(w http.ResponseWriter, r *http.Request) {
	var req generateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "name is required")
		return
	}
	if req.Rows <= 0 {
		req.Rows = 5000
	}
	if req.Rows > maxGenerateRows {
		writeError(w, http.StatusBadRequest, "bad_request",
			"rows %d exceeds the per-dataset limit %d", req.Rows, maxGenerateRows)
		return
	}
	seed := int64(42)
	if req.Seed != nil {
		seed = *req.Seed
	}
	tenant := tenantOf(r)
	// Advisory pre-check before generating up to a million rows; the
	// authoritative check stays inside putDataset.
	if err := s.reg.canCreateDataset(req.Name, tenant, s.cfg.TenantMaxDatasets); err != nil {
		writeRegistryError(w, err)
		return
	}
	if req.Family == "" {
		req.Family = "census"
	}
	family, err := synth.FamilyByName(req.Family)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	ds := &storedDataset{
		name:    req.Name,
		family:  family.Name,
		tenant:  tenant,
		table:   family.Generate(req.Rows, seed),
		hier:    family.Hierarchies(),
		created: time.Now(),
	}
	ds.table.SetScanWorkers(s.scanWorkers())
	if err := s.reg.putDataset(ds, false, s.cfg.TenantMaxDatasets); err != nil {
		writeRegistryError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, datasetJSON(ds))
}

// writeRegistryError maps registry store failures: occupancy limits are 507
// (free space with DELETE and retry), an exhausted per-tenant quota is 429
// (the tenant can free its own entries), everything else is a name conflict.
func writeRegistryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errRegistryFull):
		writeError(w, http.StatusInsufficientStorage, "registry_full", "%v", err)
	case errors.Is(err, errTenantQuota):
		writeError(w, http.StatusTooManyRequests, "tenant_quota", "%v", err)
	case errors.Is(err, errPersist):
		writeError(w, http.StatusInternalServerError, "storage", "%v", err)
	default:
		writeError(w, http.StatusConflict, "conflict", "%v", err)
	}
}

// handleUploadDataset ingests a CSV body under PUT /v1/datasets/{name}. The
// ?family= query parameter selects the schema (census or hospital); uploads
// of already-released tables (identifier columns stripped) are accepted via
// the identifier-free fallback schema. PUT is create-or-replace.
func (s *Server) handleUploadDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	family := r.URL.Query().Get("family")
	if family == "" {
		family = "census"
	}
	f, err := synth.FamilyByName(family)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	// ReadCSV buffers the body once itself (it needs two parse attempts),
	// so the handler streams the request straight in instead of holding a
	// second copy.
	tbl, err := f.ReadCSV(r.Body)
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large", "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "bad_csv", "%v", err)
		return
	}
	tbl.SetScanWorkers(s.scanWorkers())
	ds := &storedDataset{name: name, family: f.Name, tenant: tenantOf(r), table: tbl, hier: f.Hierarchies(), created: time.Now()}
	if err := s.reg.putDataset(ds, true, s.cfg.TenantMaxDatasets); err != nil {
		writeRegistryError(w, err)
		return
	}
	// A replace bumps the dataset generation: wake the reconciler for every
	// spec watching this name (after the registry lock is released).
	s.notifyDatasetChanged(ds)
	writeJSON(w, http.StatusCreated, datasetJSON(ds))
}

// handleAppendRows ingests a CSV body under POST /v1/datasets/{name}/rows and
// appends its rows to the stored dataset. The upload must parse under the
// dataset's own schema — a header or column-type mismatch is a 400 with the
// "schema_mismatch" code. The append is copy-on-write: releases pin the
// previous snapshot, so the grown table replaces the name as a new generation
// (same path as a PUT replace, including tenant quota accounting) and the
// reconciler is notified.
func (s *Server) handleAppendRows(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	cur, err := s.reg.getDataset(name)
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", "%v", err)
		return
	}
	f, err := synth.FamilyByName(cur.family)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "unsupported",
			"dataset %q has no resolvable schema family (%v); re-upload it under a known family first", name, err)
		return
	}
	rows, err := f.ReadCSV(r.Body)
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large", "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "bad_csv", "%v", err)
		return
	}
	// Clone-then-append: the stored table is immutable (released snapshots and
	// concurrent readers share it), so the rows land on a deep copy that then
	// replaces the name as the next generation.
	merged := cur.table.Clone()
	if err := merged.AppendTable(rows); err != nil {
		if errors.Is(err, dataset.ErrSchemaMismatch) {
			writeError(w, http.StatusBadRequest, "schema_mismatch", "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	merged.SetScanWorkers(s.scanWorkers())
	ds := &storedDataset{name: name, family: cur.family, tenant: tenantOf(r), table: merged, hier: cur.hier, created: time.Now()}
	if err := s.reg.putDataset(ds, true, s.cfg.TenantMaxDatasets); err != nil {
		writeRegistryError(w, err)
		return
	}
	s.notifyDatasetChanged(ds)
	writeJSON(w, http.StatusOK, datasetJSON(ds))
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	list := s.reg.listDatasets()
	out := make([]datasetInfo, len(list))
	for i, ds := range list {
		out[i] = datasetJSON(ds)
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": out})
}

// acceptsMedia reports whether the request's Accept header asks for the
// given media type. Absent and wildcard Accept headers do not count: every
// endpoint keeps serving its historical default unless the client asks for
// the alternative explicitly.
func acceptsMedia(r *http.Request, media string) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = strings.TrimSpace(mt[:i])
		}
		if mt == media {
			return true
		}
	}
	return false
}

// defaultPageLimit is the row-page size when the JSON form paginates without
// an explicit limit, so a large table never materializes one giant body.
const defaultPageLimit = 1000

// pageParams parses the limit/offset row-pagination query parameters.
// explicit reports whether the client asked for pagination at all. It writes
// the error envelope itself and reports ok=false on a malformed parameter.
func pageParams(w http.ResponseWriter, r *http.Request) (limit, offset int, explicit, ok bool) {
	limit = defaultPageLimit
	var err error
	if q := r.URL.Query().Get("limit"); q != "" {
		explicit = true
		if limit, err = strconv.Atoi(q); err != nil || limit < 1 {
			writeError(w, http.StatusBadRequest, "bad_request", "limit must be a positive integer")
			return 0, 0, false, false
		}
	}
	if q := r.URL.Query().Get("offset"); q != "" {
		explicit = true
		if offset, err = strconv.Atoi(q); err != nil || offset < 0 {
			writeError(w, http.StatusBadRequest, "bad_request", "offset must be a non-negative integer")
			return 0, 0, false, false
		}
	}
	return limit, offset, explicit, true
}

// pageOf slices one row window out of a table via the per-row accessor —
// O(limit) per page, never a full-table copy (Table.Rows clones every row;
// stored tables are immutable, so serving the shared row slices is safe).
func pageOf(t *dataset.Table, limit, offset int) [][]string {
	end := offset + limit
	if end > t.Len() || end < 0 { // end < 0: offset+limit overflowed
		end = t.Len()
	}
	if offset >= end {
		return [][]string{}
	}
	out := make([][]string, 0, end-offset)
	for i := offset; i < end; i++ {
		row, err := t.Row(i)
		if err != nil {
			break // unreachable for i < Len; keep the page well-formed anyway
		}
		out = append(out, row)
	}
	return out
}

// streamCSV serves a table as attachment CSV. WriteCSV flushes row by row,
// so the response streams instead of materializing one buffered body; the
// pagination parameters belong to the JSON form and are rejected rather
// than silently ignored.
func (s *Server) streamCSV(w http.ResponseWriter, r *http.Request, name string, tbl *dataset.Table) {
	if r.URL.Query().Get("limit") != "" || r.URL.Query().Get("offset") != "" {
		writeError(w, http.StatusBadRequest, "bad_request",
			"limit/offset paginate the JSON form; the CSV stream always carries every row")
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	// FormatMediaType quotes/escapes the filename, so user-chosen dataset
	// names with spaces or quotes stay one well-formed RFC 6266 parameter.
	w.Header().Set("Content-Disposition",
		mime.FormatMediaType("attachment", map[string]string{"filename": name + ".csv"}))
	// Errors past this point are I/O failures on a committed response.
	_ = tbl.WriteCSV(w)
}

// datasetPage is the paginated JSON view of a stored dataset's rows.
type datasetPage struct {
	datasetInfo
	Header    []string   `json:"header"`
	Data      [][]string `json:"data"`
	Offset    int        `json:"offset"`
	Limit     int        `json:"limit"`
	TotalRows int        `json:"total_rows"`
}

// handleGetDataset serves dataset metadata as JSON (the historical default),
// a row page when limit/offset are present, or the full table as streamed
// CSV under Accept: text/csv.
func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	ds, err := s.reg.getDataset(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", "%v", err)
		return
	}
	if acceptsMedia(r, "text/csv") {
		s.streamCSV(w, r, ds.name, ds.table)
		return
	}
	limit, offset, explicit, ok := pageParams(w, r)
	if !ok {
		return
	}
	if !explicit {
		writeJSON(w, http.StatusOK, datasetJSON(ds))
		return
	}
	writeJSON(w, http.StatusOK, datasetPage{
		datasetInfo: datasetJSON(ds),
		Header:      ds.table.Schema().Names(),
		Data:        pageOf(ds.table, limit, offset),
		Offset:      offset,
		Limit:       limit,
		TotalRows:   ds.table.Len(),
	})
}

func (s *Server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	err := s.reg.deleteDataset(r.PathValue("name"))
	switch {
	case errors.Is(err, errDatasetMissing):
		writeError(w, http.StatusNotFound, "not_found", "%v", err)
	case errors.Is(err, errDatasetReferred):
		writeError(w, http.StatusConflict, "conflict", "%v", err)
	case errors.Is(err, errDatasetSpecPinned):
		// Machine-readable for automation: delete the spec(s) first, which
		// cascades to their releases, then retry the dataset delete.
		writeError(w, http.StatusConflict, "spec_pinned", "%v", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
	default:
		w.WriteHeader(http.StatusNoContent)
	}
}

// ---- algorithms ----

// handleAlgorithms serves the engine registry's capability cards verbatim:
// name, description, release kind, capability flags and the machine-readable
// parameter list of every registered algorithm. The response is generated —
// an algorithm registered with the engine appears here with no server edit.
func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"algorithms": engine.Infos()})
}

// ---- anonymize ----

// anonymizeRequest is the POST /v1/anonymize body. The privacy criteria are
// declared either as a policy document ("policy"), by reference to a stored
// one ("policy_ref"), or through the deprecated flat parameters (k, l, t, c,
// diversity_mode, max_suppression, ordered_sensitive) — the three forms are
// mutually exclusive, and flat parameters are translated onto the policy
// pipeline; either way the response echoes the canonical policy enforced.
// Zero values mean "use the pipeline default" throughout, mirroring
// core.Config.
type anonymizeRequest struct {
	// Dataset names the registry table to anonymize (required).
	Dataset string `json:"dataset"`
	// Algorithm is one of the seven names; mondrian when empty.
	Algorithm string `json:"algorithm"`
	// Policy declares the privacy criteria as a policy document.
	Policy *policy.Policy `json:"policy"`
	// PolicyRef names a stored policy (see POST /v1/policies); the run pins
	// the stored document as an immutable snapshot.
	PolicyRef string `json:"policy_ref"`
	// K, L, T, C and DiversityMode are the flat privacy parameters.
	//
	// Deprecated: declare criteria in "policy" / "policy_ref" instead.
	K             int     `json:"k"`
	L             int     `json:"l"`
	T             float64 `json:"t"`
	C             float64 `json:"c"`
	DiversityMode string  `json:"diversity_mode"`
	// Sensitive overrides the schema's sensitive attribute.
	Sensitive string `json:"sensitive"`
	// QuasiIdentifiers restricts the quasi-identifier.
	QuasiIdentifiers []string `json:"quasi_identifiers"`
	// MaxSuppression bounds record suppression (datafly/samarati); the
	// pointer distinguishes "absent" (default 0.02) from an explicit 0.
	//
	// Deprecated: declare a suppression budget in the policy instead.
	MaxSuppression *float64 `json:"max_suppression"`
	// StrictMondrian selects strict partitioning.
	StrictMondrian bool `json:"strict_mondrian"`
	// OrderedSensitive selects the ordered-distance EMD for t-closeness.
	//
	// Deprecated: set "ordered" on the policy's t-closeness criterion.
	OrderedSensitive bool `json:"ordered_sensitive"`
	// NoCache bypasses the cross-request result cache for this run: the
	// release is computed fresh and the outcome is not memoized.
	NoCache bool `json:"no_cache"`
	// Store keeps the release in the registry for later report queries.
	Store bool `json:"store"`
	// IncludeRows inlines the released rows into the response.
	IncludeRows bool `json:"include_rows"`
	// TimeoutMS tightens (never widens) the server's request timeout.
	TimeoutMS int `json:"timeout_ms"`
}

// flatParamsSet reports whether any deprecated flat privacy parameter is
// present, for the mutual-exclusion check against policy/policy_ref.
func (r anonymizeRequest) flatParamsSet() bool {
	return r.K != 0 || r.L != 0 || r.T != 0 || r.C != 0 || r.DiversityMode != "" ||
		r.MaxSuppression != nil || r.OrderedSensitive
}

// criterionMeasurementJSON is the JSON view of one verified policy criterion.
type criterionMeasurementJSON struct {
	Satisfied bool    `json:"satisfied"`
	Measured  float64 `json:"measured"`
	Target    float64 `json:"target"`
	Sensitive string  `json:"sensitive,omitempty"`
}

// measurementsJSON is the JSON view of core.Measurements. The legacy scalar
// trio (k, distinct_l, max_emd) stays for compatibility; criteria carries
// the per-criterion verification keyed by criterion type.
type measurementsJSON struct {
	K                 int                                 `json:"k"`
	DistinctL         int                                 `json:"distinct_l"`
	MaxEMD            float64                             `json:"max_emd"`
	Criteria          map[string]criterionMeasurementJSON `json:"criteria,omitempty"`
	NCP               float64                             `json:"ncp"`
	Discernibility    float64                             `json:"discernibility"`
	ProsecutorMaxRisk float64                             `json:"prosecutor_max_risk"`
	SuppressedRows    int                                 `json:"suppressed_rows"`
}

func measurementsJSONOf(m core.Measurements) measurementsJSON {
	out := measurementsJSON{
		K: m.K, DistinctL: m.DistinctL, MaxEMD: m.MaxEMD, NCP: m.NCP,
		Discernibility: m.Discernibility, ProsecutorMaxRisk: m.ProsecutorMaxRisk,
		SuppressedRows: m.SuppressedRows,
	}
	if len(m.Criteria) > 0 {
		out.Criteria = make(map[string]criterionMeasurementJSON, len(m.Criteria))
		for typ, c := range m.Criteria {
			out.Criteria[typ] = criterionMeasurementJSON{
				Satisfied: c.Satisfied, Measured: c.Measured, Target: c.Target, Sensitive: c.Sensitive,
			}
		}
	}
	return out
}

// anonymizeResponse is the POST /v1/anonymize result. Policy echoes the
// canonical privacy policy the run enforced, whichever request form declared
// it.
type anonymizeResponse struct {
	ReleaseID    string           `json:"release_id,omitempty"`
	Dataset      string           `json:"dataset"`
	Algorithm    string           `json:"algorithm"`
	Policy       *policy.Policy   `json:"policy,omitempty"`
	PolicyRef    string           `json:"policy_ref,omitempty"`
	Rows         int              `json:"rows"`
	Node         []int            `json:"node,omitempty"`
	Measurements measurementsJSON `json:"measurements"`
	ElapsedMS    float64          `json:"elapsed_ms"`
	Header       []string         `json:"header,omitempty"`
	Data         [][]string       `json:"data,omitempty"`
}

// handleAnonymize is the synchronous path: the request is validated, admitted
// into the same executor queue as POST /v1/jobs (one admission policy governs
// both), and the handler waits for the run to finish. A full queue is 429
// with Retry-After; a wait that outlives the request deadline (or the client)
// sheds the job through its cancellation path before answering.
func (s *Server) handleAnonymize(w http.ResponseWriter, r *http.Request) {
	var req anonymizeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	p := s.prepareAnonymize(w, req)
	if p == nil {
		return
	}
	snap, ok := s.submit(w, tenantOf(r), p, req.Store)
	if !ok {
		return
	}
	// The deadline covers queue wait plus run; the job's own run timeout
	// (p.timeout, enforced by the executor) covers the run alone, so whichever
	// fires first sheds the work.
	waitCtx, cancel := context.WithTimeout(r.Context(), p.timeout)
	defer cancel()
	final, err := s.jobs.Wait(waitCtx, snap.ID)
	if err != nil {
		// The job keeps running without a waiter otherwise — cancel it, then
		// report why the wait ended: client gone (499) or deadline (504).
		// Except when the run beat the cancellation to the finish line: its
		// release (under store) is already published, so serve the real
		// outcome rather than a spurious error that invites a duplicating
		// retry.
		settled, ok := s.settleAbandonedWait(snap.ID)
		if !ok {
			if r.Context().Err() != nil {
				writeError(w, StatusClientClosedRequest, "canceled", "request canceled: %v", r.Context().Err())
				return
			}
			writeError(w, http.StatusGatewayTimeout, "timeout",
				"anonymization exceeded the request deadline: %v", err)
			return
		}
		final = settled
	}
	// The response is about to be delivered; drop the job record so the
	// synchronous path never pins result payloads for the job TTL the way
	// pollable background jobs must.
	_ = s.jobs.Forget(final.ID)
	switch final.State {
	case jobs.Succeeded:
		out, ok := final.Result.(*anonymizeOutcome)
		if !ok {
			writeError(w, http.StatusInternalServerError, "internal", "job %s returned no outcome", final.ID)
			return
		}
		writeJSON(w, http.StatusOK, out.resp)
	case jobs.Canceled:
		writeError(w, StatusClientClosedRequest, "canceled", "request canceled: %v", final.Err)
	default:
		writeAnonymizeError(w, final.Err)
	}
}

// rowsOf flattens a table into JSON-friendly rows.
func rowsOf(t *dataset.Table) [][]string {
	rows := t.Rows()
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = r
	}
	return out
}

// ---- releases ----

// releaseInfo is the JSON view of a stored release. Policy is the canonical
// privacy policy the release enforced (the pinned snapshot when the request
// used a policy_ref).
type releaseInfo struct {
	ID           string           `json:"id"`
	Dataset      string           `json:"dataset"`
	Algorithm    string           `json:"algorithm"`
	Policy       *policy.Policy   `json:"policy,omitempty"`
	PolicyRef    string           `json:"policy_ref,omitempty"`
	Rows         int              `json:"rows"`
	Node         []int            `json:"node,omitempty"`
	Measurements measurementsJSON `json:"measurements"`
	ElapsedMS    float64          `json:"elapsed_ms"`
	Created      time.Time        `json:"created"`
}

func releaseJSON(rel *storedRelease) releaseInfo {
	info := releaseInfo{
		ID:           rel.id,
		Dataset:      rel.dataset,
		Algorithm:    string(rel.algorithm),
		Policy:       rel.release.Policy,
		PolicyRef:    rel.policyRef,
		Node:         rel.release.Node,
		Measurements: measurementsJSONOf(rel.release.Measured),
		ElapsedMS:    float64(rel.elapsed.Microseconds()) / 1000,
		Created:      rel.created,
	}
	switch {
	case rel.release.Table != nil:
		info.Rows = rel.release.Table.Len()
	case rel.release.QIT != nil:
		info.Rows = rel.release.QIT.Len()
	}
	return info
}

func (s *Server) handleListReleases(w http.ResponseWriter, r *http.Request) {
	list := s.reg.listReleases()
	out := make([]releaseInfo, len(list))
	for i, rel := range list {
		out[i] = releaseJSON(rel)
	}
	writeJSON(w, http.StatusOK, map[string]any{"releases": out})
}

func (s *Server) handleGetRelease(w http.ResponseWriter, r *http.Request) {
	rel, err := s.reg.getRelease(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, releaseJSON(rel))
}

func (s *Server) handleDeleteRelease(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.deleteRelease(r.PathValue("id")); err != nil {
		if errors.Is(err, errReleaseSpecOwned) {
			writeError(w, http.StatusConflict, "spec_pinned",
				"%v; delete the spec to remove its release", err)
			return
		}
		writeError(w, http.StatusNotFound, "not_found", "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// releaseDataPage is the paginated JSON view of a release's rows.
type releaseDataPage struct {
	ReleaseID string     `json:"release_id"`
	Table     string     `json:"table,omitempty"`
	Header    []string   `json:"header"`
	Data      [][]string `json:"data"`
	Offset    int        `json:"offset"`
	Limit     int        `json:"limit"`
	TotalRows int        `json:"total_rows"`
}

// handleReleaseData serves a stored release's rows: streamed CSV by default
// (the historical contract), or a limit/offset row page under
// Accept: application/json, so large releases can be fetched without
// materializing one giant response body. Anatomy releases pick the table
// with ?table=qit|st (default qit); microdata releases have a single table
// and reject an explicit table selector rather than silently serving the
// wrong thing.
func (s *Server) handleReleaseData(w http.ResponseWriter, r *http.Request) {
	rel, err := s.reg.getRelease(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", "%v", err)
		return
	}
	which := r.URL.Query().Get("table")
	if which != "" && which != "qit" && which != "st" {
		writeError(w, http.StatusBadRequest, "bad_request", "table must be qit or st")
		return
	}
	tbl := rel.release.Table
	if tbl != nil {
		if which != "" {
			writeError(w, http.StatusBadRequest, "bad_request",
				"release %s is a single microdata table; drop the table parameter", rel.id)
			return
		}
	} else {
		if which == "" || which == "qit" {
			tbl = rel.release.QIT
		} else {
			tbl = rel.release.ST
		}
	}
	if tbl == nil {
		writeError(w, http.StatusUnprocessableEntity, "unsupported", "release %s has no table", rel.id)
		return
	}
	if acceptsMedia(r, "application/json") {
		limit, offset, _, ok := pageParams(w, r)
		if !ok {
			return
		}
		page := releaseDataPage{
			ReleaseID: rel.id,
			Header:    tbl.Schema().Names(),
			Data:      pageOf(tbl, limit, offset),
			Offset:    offset,
			Limit:     limit,
			TotalRows: tbl.Len(),
		}
		if rel.release.Table == nil {
			page.Table = which
			if page.Table == "" {
				page.Table = "qit"
			}
		}
		writeJSON(w, http.StatusOK, page)
		return
	}
	s.streamCSV(w, r, rel.id, tbl)
}

// riskReport is the GET /v1/releases/{id}/risk body.
type riskReport struct {
	ReleaseID     string              `json:"release_id"`
	Records       int                 `json:"records"`
	Classes       int                 `json:"classes"`
	ProsecutorMax float64             `json:"prosecutor_max"`
	ProsecutorAvg float64             `json:"prosecutor_avg"`
	Threshold     float64             `json:"threshold"`
	RecordsAtRisk float64             `json:"records_at_risk"`
	Sensitive     []sensitiveRiskJSON `json:"sensitive,omitempty"`
}

// sensitiveRiskJSON reports attribute disclosure for one sensitive column.
type sensitiveRiskJSON struct {
	Attribute         string  `json:"attribute"`
	FullyDisclosed    float64 `json:"fully_disclosed"`
	ExpectedGuessRate float64 `json:"expected_guess_rate"`
	BaselineGuessRate float64 `json:"baseline_guess_rate"`
	WorstClassShare   float64 `json:"worst_class_share"`
}

func (s *Server) handleReleaseRisk(w http.ResponseWriter, r *http.Request) {
	rel, err := s.reg.getRelease(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", "%v", err)
		return
	}
	tbl := rel.release.Table
	if tbl == nil {
		writeError(w, http.StatusUnprocessableEntity, "unsupported",
			"risk reports cover microdata releases; anatomy publishes QIT/ST (fetch them via /data)")
		return
	}
	threshold := 0.2
	if q := r.URL.Query().Get("threshold"); q != "" {
		threshold, err = strconv.ParseFloat(q, 64)
		if err != nil || threshold < 0 || threshold > 1 {
			writeError(w, http.StatusBadRequest, "bad_request", "threshold must be a number in [0,1]")
			return
		}
	}
	rr, err := risk.MeasureReidentification(tbl, threshold)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	report := riskReport{
		ReleaseID:     rel.id,
		Records:       rr.Records,
		Classes:       rr.Classes,
		ProsecutorMax: rr.ProsecutorMax,
		ProsecutorAvg: rr.ProsecutorAvg,
		Threshold:     rr.Threshold,
		RecordsAtRisk: rr.RecordsAtRisk,
	}
	for _, sensitive := range tbl.Schema().SensitiveNames() {
		h, err := risk.HomogeneityAttack(tbl, sensitive)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "internal", "%v", err)
			return
		}
		base, err := risk.BaselineGuessRate(tbl, sensitive)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "internal", "%v", err)
			return
		}
		report.Sensitive = append(report.Sensitive, sensitiveRiskJSON{
			Attribute:         sensitive,
			FullyDisclosed:    h.FullyDisclosed,
			ExpectedGuessRate: h.ExpectedGuessRate,
			BaselineGuessRate: base,
			WorstClassShare:   h.WorstClassShare,
		})
	}
	writeJSON(w, http.StatusOK, report)
}

// utilityReport is the GET /v1/releases/{id}/utility body.
type utilityReport struct {
	ReleaseID               string  `json:"release_id"`
	Dataset                 string  `json:"dataset"`
	NCP                     float64 `json:"ncp"`
	Discernibility          float64 `json:"discernibility"`
	NormalizedAvgClassSize  float64 `json:"normalized_avg_class_size"`
	NormalizedAvgClassSizeK int     `json:"normalized_avg_class_size_k"`
	// GeneralizationPrecision is present only for full-domain releases
	// (those that carry a lattice node).
	GeneralizationPrecision *float64 `json:"generalization_precision,omitempty"`
}

func (s *Server) handleReleaseUtility(w http.ResponseWriter, r *http.Request) {
	rel, err := s.reg.getRelease(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", "%v", err)
		return
	}
	tbl := rel.release.Table
	if tbl == nil {
		writeError(w, http.StatusUnprocessableEntity, "unsupported",
			"utility reports cover microdata releases; anatomy keeps exact QI values by design")
		return
	}
	// Reports compare against the dataset snapshot captured at anonymize
	// time (rel.origin), not a by-name lookup: a dataset replaced while the
	// release was in flight must not change what the release is scored
	// against.
	original, err := rel.origin.table.DropIdentifiers()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	k := rel.params.K
	if k < 1 {
		k = 10
	}
	if q := r.URL.Query().Get("k"); q != "" {
		k, err = strconv.Atoi(q)
		if err != nil || k < 1 {
			writeError(w, http.StatusBadRequest, "bad_request", "k must be a positive integer")
			return
		}
	}
	report := utilityReport{ReleaseID: rel.id, Dataset: rel.dataset, NormalizedAvgClassSizeK: k}
	report.NCP, err = metrics.NCP(original, tbl, rel.origin.hier)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", "NCP: %v", err)
		return
	}
	report.Discernibility, err = metrics.Discernibility(tbl, original.Len())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", "discernibility: %v", err)
		return
	}
	report.NormalizedAvgClassSize, err = metrics.NormalizedAverageClassSize(tbl, k)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", "C_avg: %v", err)
		return
	}
	if len(rel.release.Node) > 0 && rel.origin.hier != nil {
		qi := tbl.Schema().QuasiIdentifierNames()
		if len(rel.params.QuasiIdentifiers) > 0 {
			qi = rel.params.QuasiIdentifiers
		}
		if maxLevels, lerr := rel.origin.hier.MaxLevels(qi); lerr == nil {
			if p, perr := metrics.GeneralizationPrecision(rel.release.Node, maxLevels); perr == nil {
				report.GeneralizationPrecision = &p
			}
		}
	}
	writeJSON(w, http.StatusOK, report)
}

// decodeJSON parses a JSON request body strictly (unknown fields are errors,
// so typos in parameter names surface instead of silently defaulting). It
// writes the error envelope itself and reports whether decoding succeeded.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large", "%v", err)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad_json", "decode request: %v", err)
		return false
	}
	return true
}
