package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ppdp/ppdp/internal/core"
	"github.com/ppdp/ppdp/internal/synth"
)

// newTestServer starts the service on an httptest listener.
func newTestServer(t testing.TB, cfg Config) (*httptest.Server, *Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

// doJSON issues a request with an optional JSON body and decodes the JSON
// response into a generic map.
func doJSON(t testing.TB, method, url string, body any) (int, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]any{}
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("%s %s: non-JSON response %d: %s", method, url, resp.StatusCode, raw)
		}
	}
	return resp.StatusCode, out
}

// errorCode digs the envelope code out of an error response.
func errorCode(t testing.TB, body map[string]any) string {
	t.Helper()
	env, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("response has no error envelope: %v", body)
	}
	code, _ := env["code"].(string)
	if code == "" {
		t.Fatalf("error envelope has no code: %v", body)
	}
	if msg, _ := env["message"].(string); msg == "" {
		t.Fatalf("error envelope has no message: %v", body)
	}
	return code
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	status, body := doJSON(t, "GET", ts.URL+"/healthz", nil)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if body["status"] != "ok" {
		t.Errorf("body = %v", body)
	}
	if _, ok := body["datasets"]; !ok {
		t.Errorf("healthz misses dataset count: %v", body)
	}
}

func TestAlgorithmsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	status, body := doJSON(t, "GET", ts.URL+"/v1/algorithms", nil)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	algs, ok := body["algorithms"].([]any)
	if !ok || len(algs) != 8 {
		t.Fatalf("algorithms = %v", body)
	}
	// The listing is generated from the engine registry: the default
	// algorithm leads and every card carries a machine-readable parameter
	// list.
	first, ok := algs[0].(map[string]any)
	if !ok || first["name"] != "mondrian" || first["default"] != true {
		t.Errorf("first algorithm = %v, want the default (mondrian)", algs[0])
	}
	for _, a := range algs {
		card := a.(map[string]any)
		params, ok := card["parameters"].([]any)
		if !ok || len(params) == 0 {
			t.Errorf("algorithm %v has no parameter metadata", card["name"])
		}
	}
}

func TestDatasetLifecycle(t *testing.T) {
	ts, _ := newTestServer(t, Config{})

	// Generate.
	status, body := doJSON(t, "POST", ts.URL+"/v1/datasets",
		map[string]any{"name": "h1", "family": "hospital", "rows": 300, "seed": 7})
	if status != http.StatusCreated {
		t.Fatalf("generate status = %d: %v", status, body)
	}
	if body["rows"].(float64) != 300 {
		t.Errorf("rows = %v", body["rows"])
	}

	// Duplicate name conflicts.
	status, body = doJSON(t, "POST", ts.URL+"/v1/datasets", map[string]any{"name": "h1"})
	if status != http.StatusConflict || errorCode(t, body) != "conflict" {
		t.Fatalf("duplicate = %d %v", status, body)
	}

	// Unknown family.
	status, body = doJSON(t, "POST", ts.URL+"/v1/datasets", map[string]any{"name": "x", "family": "bogus"})
	if status != http.StatusBadRequest || errorCode(t, body) != "bad_request" {
		t.Fatalf("bad family = %d %v", status, body)
	}

	// Missing name.
	status, body = doJSON(t, "POST", ts.URL+"/v1/datasets", map[string]any{"family": "census"})
	if status != http.StatusBadRequest {
		t.Fatalf("missing name = %d %v", status, body)
	}

	// Upload a CSV under the census schema.
	var csvBuf bytes.Buffer
	if err := synth.Census(120, 3).WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("PUT", ts.URL+"/v1/datasets/up1?family=census", bytes.NewReader(csvBuf.Bytes()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d", resp.StatusCode)
	}

	// Upload garbage.
	req, _ = http.NewRequest("PUT", ts.URL+"/v1/datasets/up2?family=census", strings.NewReader("not,a\nvalid csv"))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(raw), "bad_csv") {
		t.Fatalf("garbage upload = %d %s", resp.StatusCode, raw)
	}

	// List and get.
	status, body = doJSON(t, "GET", ts.URL+"/v1/datasets", nil)
	if status != http.StatusOK || len(body["datasets"].([]any)) != 2 {
		t.Fatalf("list = %d %v", status, body)
	}
	status, body = doJSON(t, "GET", ts.URL+"/v1/datasets/h1", nil)
	if status != http.StatusOK || body["family"] != "hospital" {
		t.Fatalf("get = %d %v", status, body)
	}
	status, body = doJSON(t, "GET", ts.URL+"/v1/datasets/nope", nil)
	if status != http.StatusNotFound || errorCode(t, body) != "not_found" {
		t.Fatalf("get missing = %d %v", status, body)
	}

	// Delete.
	status, _ = doJSON(t, "DELETE", ts.URL+"/v1/datasets/up1", nil)
	if status != http.StatusNoContent {
		t.Fatalf("delete = %d", status)
	}
	status, body = doJSON(t, "DELETE", ts.URL+"/v1/datasets/up1", nil)
	if status != http.StatusNotFound {
		t.Fatalf("re-delete = %d %v", status, body)
	}
}

// TestAnonymizeAllAlgorithmsConcurrent fires every algorithm against the
// same stored dataset at once, several times each. Run under -race this
// checks that the registry and the shared columnar caches tolerate
// concurrent anonymize traffic.
func TestAnonymizeAllAlgorithmsConcurrent(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 2})
	status, body := doJSON(t, "POST", ts.URL+"/v1/datasets",
		map[string]any{"name": "hosp", "family": "hospital", "rows": 500, "seed": 1})
	if status != http.StatusCreated {
		t.Fatalf("generate = %d %v", status, body)
	}

	requests := []map[string]any{
		{"dataset": "hosp", "algorithm": "mondrian", "k": 5},
		{"dataset": "hosp", "algorithm": "mondrian", "k": 5, "l": 2, "sensitive": "diagnosis"},
		{"dataset": "hosp", "algorithm": "datafly", "k": 5, "quasi_identifiers": []string{"age", "zip", "sex"}},
		{"dataset": "hosp", "algorithm": "incognito", "k": 5, "quasi_identifiers": []string{"age", "zip", "sex"}},
		{"dataset": "hosp", "algorithm": "samarati", "k": 5, "quasi_identifiers": []string{"age", "zip", "sex"}},
		{"dataset": "hosp", "algorithm": "topdown", "k": 5, "quasi_identifiers": []string{"age", "zip", "sex"}},
		{"dataset": "hosp", "algorithm": "kmember", "k": 5, "quasi_identifiers": []string{"age", "zip", "sex"}},
		{"dataset": "hosp", "algorithm": "anatomy", "l": 2, "sensitive": "diagnosis"},
	}
	// Raw HTTP in the goroutines: t.Fatal must not be called off the test
	// goroutine, so failures flow through the channel instead.
	call := func(req map[string]any) error {
		buf, err := json.Marshal(req)
		if err != nil {
			return err
		}
		resp, err := http.Post(ts.URL+"/v1/anonymize", "application/json", bytes.NewReader(buf))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%v: status %d: %s", req, resp.StatusCode, raw)
		}
		var body struct {
			Algorithm    string `json:"algorithm"`
			Rows         int    `json:"rows"`
			Measurements struct {
				K int `json:"k"`
			} `json:"measurements"`
		}
		if err := json.Unmarshal(raw, &body); err != nil {
			return fmt.Errorf("%v: decode: %v", req, err)
		}
		alg := req["algorithm"].(string)
		if body.Algorithm != alg {
			return fmt.Errorf("%v: echoed algorithm %q", req, body.Algorithm)
		}
		if body.Rows == 0 {
			return fmt.Errorf("%v: empty release", req)
		}
		if want, ok := req["k"].(int); ok && alg != "anatomy" && body.Measurements.K < want {
			return fmt.Errorf("%v: measured k %d below requested %d", req, body.Measurements.K, want)
		}
		return nil
	}

	const perRequest = 3
	var wg sync.WaitGroup
	errc := make(chan error, len(requests)*perRequest)
	for _, req := range requests {
		for i := 0; i < perRequest; i++ {
			wg.Add(1)
			go func(req map[string]any) {
				defer wg.Done()
				if err := call(req); err != nil {
					errc <- err
				}
			}(req)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func TestAnonymizeBadInputs(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	doJSON(t, "POST", ts.URL+"/v1/datasets", map[string]any{"name": "c", "family": "census", "rows": 200, "seed": 2})

	cases := []struct {
		name   string
		body   any
		status int
		code   string
	}{
		{"missing dataset", map[string]any{"algorithm": "mondrian"}, http.StatusBadRequest, "bad_request"},
		{"unknown dataset", map[string]any{"dataset": "nope"}, http.StatusNotFound, "not_found"},
		{"unknown algorithm", map[string]any{"dataset": "c", "algorithm": "bogus"}, http.StatusBadRequest, "bad_request"},
		{"negative k", map[string]any{"dataset": "c", "k": -3}, http.StatusBadRequest, "bad_config"},
		{"bad t", map[string]any{"dataset": "c", "k": 5, "t": 1.5}, http.StatusBadRequest, "bad_config"},
		{"bad diversity mode", map[string]any{"dataset": "c", "k": 5, "l": 2, "diversity_mode": "bogus", "sensitive": "salary"}, http.StatusBadRequest, "bad_config"},
		{"anatomy without l", map[string]any{"dataset": "c", "algorithm": "anatomy"}, http.StatusBadRequest, "bad_config"},
		{"unsatisfiable k", map[string]any{"dataset": "c", "k": 100000}, http.StatusUnprocessableEntity, "unsatisfiable"},
		{"unknown field", map[string]any{"dataset": "c", "kay": 5}, http.StatusBadRequest, "bad_json"},
	}
	for _, tc := range cases {
		status, body := doJSON(t, "POST", ts.URL+"/v1/anonymize", tc.body)
		if status != tc.status {
			t.Errorf("%s: status = %d want %d (%v)", tc.name, status, tc.status, body)
			continue
		}
		if got := errorCode(t, body); got != tc.code {
			t.Errorf("%s: code = %q want %q", tc.name, got, tc.code)
		}
	}

	// Malformed JSON body.
	resp, err := http.Post(ts.URL+"/v1/anonymize", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON status = %d", resp.StatusCode)
	}

	// Wrong method gets the mux's 405.
	resp, err = http.Get(ts.URL + "/v1/anonymize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/anonymize status = %d", resp.StatusCode)
	}
}

// TestAnonymizeCancellation checks both cancellation paths: a client that
// goes away (499 envelope on the server side) and a request deadline that
// expires inside the Mondrian pool (504).
func TestAnonymizeCancellation(t *testing.T) {
	srv := New(Config{})
	handler := srv.Handler()

	// Seed a dataset large enough that the run cannot finish instantly.
	seed := httptest.NewRequest("POST", "/v1/datasets",
		strings.NewReader(`{"name":"big","family":"census","rows":4000,"seed":5}`))
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, seed)
	if rec.Code != http.StatusCreated {
		t.Fatalf("seed dataset: %d %s", rec.Code, rec.Body)
	}

	// Pre-canceled request context: the pipeline must refuse to run and the
	// handler must map it to the 499 envelope.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/v1/anonymize",
		strings.NewReader(`{"dataset":"big","k":5}`)).WithContext(ctx)
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("canceled request status = %d, body %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), `"canceled"`) {
		t.Fatalf("canceled body = %s", rec.Body)
	}

	// Cancel mid-run: the context dies while the worker pool is splitting.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel2()
	}()
	req = httptest.NewRequest("POST", "/v1/anonymize",
		strings.NewReader(`{"dataset":"big","k":2}`)).WithContext(ctx2)
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest && rec.Code != http.StatusOK {
		t.Fatalf("mid-run cancel status = %d, body %s", rec.Code, rec.Body)
	}

	// timeout_ms tightens the deadline below the run time: 504. no_cache
	// keeps this a real run — if the mid-run cancel above completed instead,
	// its memoized release would satisfy any deadline instantly.
	req = httptest.NewRequest("POST", "/v1/anonymize",
		strings.NewReader(`{"dataset":"big","k":2,"timeout_ms":1,"no_cache":true}`))
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("timeout status = %d, body %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), `"timeout"`) {
		t.Fatalf("timeout body = %s", rec.Body)
	}

	// The service stays healthy after shed work.
	req = httptest.NewRequest("GET", "/healthz", nil)
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz after cancellations = %d", rec.Code)
	}
}

func TestReleaseLifecycleAndReports(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	doJSON(t, "POST", ts.URL+"/v1/datasets", map[string]any{"name": "c", "family": "census", "rows": 400, "seed": 9})

	// Anonymize, store, inline rows.
	status, body := doJSON(t, "POST", ts.URL+"/v1/anonymize",
		map[string]any{"dataset": "c", "algorithm": "mondrian", "k": 5, "store": true, "include_rows": true})
	if status != http.StatusOK {
		t.Fatalf("anonymize = %d %v", status, body)
	}
	id, _ := body["release_id"].(string)
	if id == "" {
		t.Fatalf("no release id: %v", body)
	}
	if len(body["data"].([]any)) != int(body["rows"].(float64)) {
		t.Errorf("inline rows mismatch")
	}

	// Release listing and detail.
	status, body = doJSON(t, "GET", ts.URL+"/v1/releases", nil)
	if status != http.StatusOK || len(body["releases"].([]any)) != 1 {
		t.Fatalf("releases = %d %v", status, body)
	}
	status, body = doJSON(t, "GET", ts.URL+"/v1/releases/"+id, nil)
	if status != http.StatusOK || body["algorithm"] != "mondrian" {
		t.Fatalf("release = %d %v", status, body)
	}
	if status, body = doJSON(t, "GET", ts.URL+"/v1/releases/r999", nil); status != http.StatusNotFound {
		t.Fatalf("missing release = %d %v", status, body)
	}

	// CSV download round-trips through the census released schema.
	resp, err := http.Get(ts.URL + "/v1/releases/" + id + "/data")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(resp.Header.Get("Content-Type"), "text/csv") {
		t.Fatalf("data = %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if lines := strings.Count(string(raw), "\n"); lines < 100 {
		t.Errorf("data rows = %d", lines)
	}

	// Risk report.
	status, body = doJSON(t, "GET", ts.URL+"/v1/releases/"+id+"/risk?threshold=0.5", nil)
	if status != http.StatusOK {
		t.Fatalf("risk = %d %v", status, body)
	}
	if max := body["prosecutor_max"].(float64); max > 1.0/5+1e-9 {
		t.Errorf("prosecutor_max = %v above 1/k", max)
	}
	if body["threshold"].(float64) != 0.5 {
		t.Errorf("threshold = %v", body["threshold"])
	}
	if _, ok := body["sensitive"].([]any); !ok {
		t.Errorf("risk misses sensitive section: %v", body)
	}
	status, body = doJSON(t, "GET", ts.URL+"/v1/releases/"+id+"/risk?threshold=7", nil)
	if status != http.StatusBadRequest {
		t.Fatalf("bad threshold = %d %v", status, body)
	}

	// Utility report.
	status, body = doJSON(t, "GET", ts.URL+"/v1/releases/"+id+"/utility", nil)
	if status != http.StatusOK {
		t.Fatalf("utility = %d %v", status, body)
	}
	if ncp := body["ncp"].(float64); ncp < 0 || ncp > 1 {
		t.Errorf("ncp = %v", ncp)
	}
	if body["normalized_avg_class_size_k"].(float64) != 5 {
		t.Errorf("default k = %v", body["normalized_avg_class_size_k"])
	}

	// The original dataset is delete-protected while the release lives.
	if status, body = doJSON(t, "DELETE", ts.URL+"/v1/datasets/c", nil); status != http.StatusConflict {
		t.Fatalf("delete referenced dataset = %d %v", status, body)
	}

	// Anatomy releases expose QIT/ST downloads but no microdata reports.
	doJSON(t, "POST", ts.URL+"/v1/datasets", map[string]any{"name": "h", "family": "hospital", "rows": 300, "seed": 3})
	status, body = doJSON(t, "POST", ts.URL+"/v1/anonymize",
		map[string]any{"dataset": "h", "algorithm": "anatomy", "l": 2, "store": true})
	if status != http.StatusOK {
		t.Fatalf("anatomy anonymize = %d %v", status, body)
	}
	aid := body["release_id"].(string)
	for _, tbl := range []string{"qit", "st"} {
		resp, err := http.Get(ts.URL + "/v1/releases/" + aid + "/data?table=" + tbl)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("anatomy %s download = %d", tbl, resp.StatusCode)
		}
	}
	status, body = doJSON(t, "GET", ts.URL+"/v1/releases/"+aid+"/risk", nil)
	if status != http.StatusUnprocessableEntity || errorCode(t, body) != "unsupported" {
		t.Fatalf("anatomy risk = %d %v", status, body)
	}
	status, body = doJSON(t, "GET", ts.URL+"/v1/releases/"+aid+"/utility", nil)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("anatomy utility = %d %v", status, body)
	}
}

// TestBodyLimit checks the MaxBodyBytes gate on uploads.
func TestBodyLimit(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxBodyBytes: 64})
	req, _ := http.NewRequest("PUT", ts.URL+"/v1/datasets/big?family=census",
		bytes.NewReader(bytes.Repeat([]byte("x"), 4096)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge || !strings.Contains(string(raw), "body_too_large") {
		t.Fatalf("oversized upload = %d %s", resp.StatusCode, raw)
	}
}

// TestGenerateRowsCap bounds synthetic generation per request.
func TestGenerateRowsCap(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	status, body := doJSON(t, "POST", ts.URL+"/v1/datasets",
		map[string]any{"name": "huge", "family": "census", "rows": 2_000_000_000})
	if status != http.StatusBadRequest || errorCode(t, body) != "bad_request" {
		t.Fatalf("oversized generate = %d %v", status, body)
	}
}

// TestUploadReplaceProtection: PUT may replace a dataset, but not one a
// stored release still references.
func TestUploadReplaceProtection(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	var csvBuf bytes.Buffer
	if err := synth.Census(80, 1).WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	upload := func() int {
		req, _ := http.NewRequest("PUT", ts.URL+"/v1/datasets/d?family=census", bytes.NewReader(csvBuf.Bytes()))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if status := upload(); status != http.StatusCreated {
		t.Fatalf("first upload = %d", status)
	}
	// Replace while unreferenced is fine.
	if status := upload(); status != http.StatusCreated {
		t.Fatalf("replace = %d", status)
	}
	// A stored release pins the dataset.
	status, body := doJSON(t, "POST", ts.URL+"/v1/anonymize",
		map[string]any{"dataset": "d", "k": 5, "store": true})
	if status != http.StatusOK {
		t.Fatalf("anonymize = %d %v", status, body)
	}
	if status := upload(); status != http.StatusConflict {
		t.Fatalf("replace of referenced dataset = %d, want 409", status)
	}
}

// BenchmarkServeAnonymize measures end-to-end requests per second of POST
// /v1/anonymize (Mondrian, k=10) over a stored 5k-row census table,
// including JSON encoding and HTTP transport. no_cache keeps every
// iteration a full computation — BenchmarkCacheHit measures the memoized
// path over the same request.
func BenchmarkServeAnonymize(b *testing.B) {
	ts, _ := newTestServer(b, Config{})
	status, body := doJSON(b, "POST", ts.URL+"/v1/datasets",
		map[string]any{"name": "bench", "family": "census", "rows": 5000, "seed": 42})
	if status != http.StatusCreated {
		b.Fatalf("seed dataset = %d %v", status, body)
	}
	payload := map[string]any{"dataset": "bench", "algorithm": "mondrian", "k": 10, "no_cache": true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		status, body := doJSON(b, "POST", ts.URL+"/v1/anonymize", payload)
		if status != http.StatusOK {
			b.Fatalf("anonymize = %d %v", status, body)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// TestRegistryCaps exercises the occupancy limits directly on the registry.
func TestRegistryCaps(t *testing.T) {
	reg := newRegistry(0, 0, 0)
	tbl := synth.Census(1, 1)
	for i := 0; i < DefaultMaxDatasets; i++ {
		ds := &storedDataset{name: fmt.Sprintf("d%d", i), table: tbl}
		if err := reg.putDataset(ds, false, 0); err != nil {
			t.Fatalf("dataset %d: %v", i, err)
		}
	}
	if err := reg.putDataset(&storedDataset{name: "overflow", table: tbl}, false, 0); !errors.Is(err, errRegistryFull) {
		t.Fatalf("dataset overflow error = %v, want errRegistryFull", err)
	}
	// Replacing an existing name is not growth and stays allowed.
	if err := reg.putDataset(&storedDataset{name: "d0", table: tbl}, true, 0); err != nil {
		t.Fatalf("replace at cap: %v", err)
	}
	for i := 0; i < DefaultMaxReleases; i++ {
		if _, err := reg.putRelease(&storedRelease{dataset: "d0", release: &core.Release{}}); err != nil {
			t.Fatalf("release %d: %v", i, err)
		}
	}
	if _, err := reg.putRelease(&storedRelease{dataset: "d0", release: &core.Release{}}); !errors.Is(err, errRegistryFull) {
		t.Fatalf("release overflow error = %v, want errRegistryFull", err)
	}
	// Deleting a release frees a slot.
	if err := reg.deleteRelease("r1"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.putRelease(&storedRelease{dataset: "d0", release: &core.Release{}}); err != nil {
		t.Fatalf("store after delete: %v", err)
	}
}

// TestDeleteReleaseUnpinsDataset checks the DELETE /v1/releases/{id} flow.
func TestDeleteReleaseUnpinsDataset(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	doJSON(t, "POST", ts.URL+"/v1/datasets", map[string]any{"name": "d", "family": "census", "rows": 150})
	status, body := doJSON(t, "POST", ts.URL+"/v1/anonymize",
		map[string]any{"dataset": "d", "k": 5, "store": true})
	if status != http.StatusOK {
		t.Fatalf("anonymize = %d %v", status, body)
	}
	id := body["release_id"].(string)
	// The release pins the dataset...
	if status, _ = doJSON(t, "DELETE", ts.URL+"/v1/datasets/d", nil); status != http.StatusConflict {
		t.Fatalf("delete pinned dataset = %d", status)
	}
	// ...until it is deleted.
	if status, _ = doJSON(t, "DELETE", ts.URL+"/v1/releases/"+id, nil); status != http.StatusNoContent {
		t.Fatalf("delete release = %d", status)
	}
	if status, _ = doJSON(t, "DELETE", ts.URL+"/v1/releases/"+id, nil); status != http.StatusNotFound {
		t.Fatalf("re-delete release = %d", status)
	}
	if status, _ = doJSON(t, "DELETE", ts.URL+"/v1/datasets/d", nil); status != http.StatusNoContent {
		t.Fatalf("delete unpinned dataset = %d", status)
	}
}

// TestGenerateSeedZero: an explicit seed of 0 is honored, not coerced to the
// default.
func TestGenerateSeedZero(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	doJSON(t, "POST", ts.URL+"/v1/datasets", map[string]any{"name": "z", "family": "census", "rows": 50, "seed": 0})
	doJSON(t, "POST", ts.URL+"/v1/datasets", map[string]any{"name": "def", "family": "census", "rows": 50})
	fetch := func(name string) string {
		status, body := doJSON(t, "POST", ts.URL+"/v1/anonymize",
			map[string]any{"dataset": name, "k": 1, "include_rows": true})
		if status != http.StatusOK {
			t.Fatalf("anonymize %s = %d %v", name, status, body)
		}
		raw, _ := json.Marshal(body["data"])
		return string(raw)
	}
	if fetch("z") == fetch("def") {
		t.Fatal("seed 0 produced the same table as the default seed 42")
	}
}

// TestMicrodataTableParamRejected: ?table= is an Anatomy-only selector.
func TestMicrodataTableParamRejected(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	doJSON(t, "POST", ts.URL+"/v1/datasets", map[string]any{"name": "d", "family": "census", "rows": 120})
	status, body := doJSON(t, "POST", ts.URL+"/v1/anonymize",
		map[string]any{"dataset": "d", "k": 5, "store": true})
	if status != http.StatusOK {
		t.Fatalf("anonymize = %d %v", status, body)
	}
	id := body["release_id"].(string)
	for _, q := range []string{"qit", "st", "bogus"} {
		resp, err := http.Get(ts.URL + "/v1/releases/" + id + "/data?table=" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("microdata data?table=%s = %d, want 400", q, resp.StatusCode)
		}
	}
}
