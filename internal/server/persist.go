package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"github.com/ppdp/ppdp/internal/core"
	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/hierarchy"
	"github.com/ppdp/ppdp/internal/policy"
	"github.com/ppdp/ppdp/internal/store"
	"github.com/ppdp/ppdp/internal/synth"
)

// This file bridges the in-memory registry to the durable store
// (internal/store). With Config.DataDir set, every registry mutation —
// dataset put/replace/delete, release publish/delete, policy create/delete —
// is journaled to the write-ahead log (append + fsync) before the in-memory
// map changes, so an acknowledged API response is always recoverable. Table
// contents travel separately as content-addressed columnar snapshots
// (Store.PutTable), written durably before the record referencing them is
// journaled; record metadata (tenants, parameters, measurements, policies)
// is serialized as opaque JSON the store hands back verbatim at recovery.
//
// Recovery (Open) rebuilds the registry from the store: tables come back as
// zero-copy mmap views that materialize rows only if a handler ever needs
// them, hierarchies are rebuilt deterministically from the dataset's family,
// and release ids resume past the highest recovered sequence number.

// errPersist marks storage failures during a registry mutation, mapped to a
// 500 with the "storage" code (the request is well-formed; the disk is not).
var errPersist = errors.New("storage failure")

// datasetMeta is the journaled metadata of one stored dataset. The table
// itself is referenced by fingerprint in the record's Tables list; the
// hierarchy set is not persisted — it is rebuilt from the family, which
// regenerates deterministically.
type datasetMeta struct {
	Family string `json:"family,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	// Generation counts content versions of the name (1 at creation, +1 per
	// replace or append); the reconciler compares it against the generation
	// each release spec last reconciled.
	Generation  uint64 `json:"generation,omitempty"`
	CreatedUnix int64  `json:"created_unix_ns"`
}

// releaseMeta is the journaled metadata of one stored release: everything a
// storedRelease holds except the tables (referenced by fingerprint) and the
// Anatomy query-estimation state, which no server endpoint reads.
type releaseMeta struct {
	Seq     int    `json:"seq"`
	Dataset string `json:"dataset"`
	// Origin pins the dataset snapshot the release was built from, so
	// reports recover comparing against exactly the table that was
	// anonymized even if the registry name is later rebound.
	OriginFP      string            `json:"origin_fp"`
	OriginFamily  string            `json:"origin_family,omitempty"`
	OriginTenant  string            `json:"origin_tenant,omitempty"`
	OriginCreated int64             `json:"origin_created_unix_ns"`
	Algorithm     string            `json:"algorithm"`
	PolicyRef     string            `json:"policy_ref,omitempty"`
	Params        anonymizeRequest  `json:"params"`
	Policy        *policy.Policy    `json:"policy,omitempty"`
	Node          []int             `json:"node,omitempty"`
	Measured      core.Measurements `json:"measured"`
	TableFP       string            `json:"table_fp,omitempty"`
	QITFP         string            `json:"qit_fp,omitempty"`
	STFP          string            `json:"st_fp,omitempty"`
	// Spec names the release spec that owns this release ("" for ad-hoc
	// releases published through POST /v1/anonymize).
	Spec        string `json:"spec,omitempty"`
	ElapsedNS   int64  `json:"elapsed_ns"`
	CreatedUnix int64  `json:"created_unix_ns"`
}

// policyMeta is the journaled form of one stored policy (already canonical).
type policyMeta struct {
	Policy      *policy.Policy `json:"policy"`
	CreatedUnix int64          `json:"created_unix_ns"`
}

// hierarchyForFamily rebuilds the hierarchy set for a recovered dataset. The
// synthetic families construct their hierarchies deterministically, so they
// need not be persisted. Datasets registered by embedding callers with a
// family the server cannot resolve recover with no hierarchies — their rows
// are intact, but hierarchy-driven algorithms will reject them until
// re-uploaded under a known family.
func hierarchyForFamily(family string) *hierarchy.Set {
	f, err := synth.FamilyByName(family)
	if err != nil {
		return nil
	}
	return f.Hierarchies()
}

// persistDataset journals a dataset put. The caller must hold the registry
// write lock; the table snapshot must already be durable and its fingerprint
// recorded on ds.fp (see putDataset).
func (r *registry) persistDataset(ds *storedDataset) error {
	meta, err := json.Marshal(datasetMeta{
		Family:      ds.family,
		Tenant:      ds.tenant,
		Generation:  ds.generation,
		CreatedUnix: ds.created.UnixNano(),
	})
	if err != nil {
		return fmt.Errorf("%w: %v", errPersist, err)
	}
	err = r.st.Apply(store.Op{
		Op: store.OpPut, Kind: store.KindDataset, Key: ds.name,
		Tables: []string{ds.fp}, Meta: meta,
	})
	if err != nil {
		return fmt.Errorf("%w: %v", errPersist, err)
	}
	return nil
}

// persistRelease journals a release put. The caller must hold the registry
// write lock and must have persisted every referenced table snapshot.
func (r *registry) persistRelease(rel *storedRelease, originFP string, tableFPs releaseTableFPs) error {
	meta, err := json.Marshal(releaseMeta{
		Seq:           rel.seq,
		Dataset:       rel.dataset,
		OriginFP:      originFP,
		OriginFamily:  rel.origin.family,
		OriginTenant:  rel.origin.tenant,
		OriginCreated: rel.origin.created.UnixNano(),
		Algorithm:     string(rel.algorithm),
		PolicyRef:     rel.policyRef,
		Params:        rel.params,
		Policy:        rel.release.Policy,
		Node:          rel.release.Node,
		Measured:      rel.release.Measured,
		TableFP:       tableFPs.table,
		QITFP:         tableFPs.qit,
		STFP:          tableFPs.st,
		Spec:          rel.spec,
		ElapsedNS:     rel.elapsed.Nanoseconds(),
		CreatedUnix:   rel.created.UnixNano(),
	})
	if err != nil {
		return fmt.Errorf("%w: %v", errPersist, err)
	}
	tables := []string{originFP}
	for _, fp := range []string{tableFPs.table, tableFPs.qit, tableFPs.st} {
		if fp != "" && fp != originFP {
			tables = append(tables, fp)
		}
	}
	err = r.st.Apply(store.Op{
		Op: store.OpPut, Kind: store.KindRelease, Key: rel.id,
		Seq: uint64(rel.seq), Tables: tables, Meta: meta,
	})
	if err != nil {
		return fmt.Errorf("%w: %v", errPersist, err)
	}
	return nil
}

// persistPolicy journals a policy put under the registry write lock.
func (r *registry) persistPolicy(sp *storedPolicy) error {
	meta, err := json.Marshal(policyMeta{Policy: sp.policy, CreatedUnix: sp.created.UnixNano()})
	if err != nil {
		return fmt.Errorf("%w: %v", errPersist, err)
	}
	if err := r.st.Apply(store.Op{Op: store.OpPut, Kind: store.KindPolicy, Key: sp.name, Meta: meta}); err != nil {
		return fmt.Errorf("%w: %v", errPersist, err)
	}
	return nil
}

// persistDelete journals a delete of any kind under the registry write lock.
func (r *registry) persistDelete(kind, key string) error {
	if err := r.st.Apply(store.Op{Op: store.OpDelete, Kind: kind, Key: key}); err != nil {
		return fmt.Errorf("%w: %v", errPersist, err)
	}
	return nil
}

// releaseTableFPs carries the snapshot fingerprints of a release's published
// tables (microdata, or the Anatomy QIT/ST pair).
type releaseTableFPs struct {
	table, qit, st string
}

// persistReleaseTables writes the release's published tables as durable
// content-addressed snapshots. Called outside the registry lock — snapshot
// encoding is the expensive part, and PutTable is idempotent, so a put that
// later loses the id race leaves at worst an unreferenced file for the next
// checkpoint's GC.
func (r *registry) persistReleaseTables(rel *storedRelease) (originFP string, fps releaseTableFPs, err error) {
	put := func(t *dataset.Table) (string, error) {
		if t == nil {
			return "", nil
		}
		return r.st.PutTable(t)
	}
	if originFP, err = put(rel.origin.table); err != nil {
		return "", fps, fmt.Errorf("%w: %v", errPersist, err)
	}
	if fps.table, err = put(rel.release.Table); err != nil {
		return "", fps, fmt.Errorf("%w: %v", errPersist, err)
	}
	if fps.qit, err = put(rel.release.QIT); err != nil {
		return "", fps, fmt.Errorf("%w: %v", errPersist, err)
	}
	if fps.st, err = put(rel.release.ST); err != nil {
		return "", fps, fmt.Errorf("%w: %v", errPersist, err)
	}
	return originFP, fps, nil
}

// recover rebuilds the registry from a freshly opened store: datasets and
// policies first, then releases (which reference dataset snapshots). Tables
// load as mmap-backed zero-copy views and stay cold — rows materialize only
// when a handler actually needs row access. Any inconsistency refuses boot:
// a server that starts must serve exactly what was acknowledged.
func (s *Server) recover(st *store.Store) error {
	reg := s.reg
	for _, rec := range st.Records(store.KindDataset) {
		var m datasetMeta
		if err := json.Unmarshal(rec.Meta, &m); err != nil {
			return fmt.Errorf("server: recover dataset %q: undecodable metadata: %w", rec.Key, err)
		}
		if len(rec.Tables) != 1 {
			return fmt.Errorf("server: recover dataset %q: %d table references, want 1", rec.Key, len(rec.Tables))
		}
		tbl, err := st.Table(rec.Tables[0])
		if err != nil {
			return fmt.Errorf("server: recover dataset %q: %w", rec.Key, err)
		}
		tbl.SetScanWorkers(s.scanWorkers())
		gen := m.Generation
		if gen == 0 {
			gen = 1 // records journaled before generations existed
		}
		reg.datasets[rec.Key] = &storedDataset{
			name:       rec.Key,
			family:     m.Family,
			tenant:     m.Tenant,
			table:      tbl,
			hier:       hierarchyForFamily(m.Family),
			generation: gen,
			// The snapshot is content-addressed, so its fingerprint in the
			// record IS the dataset's content fingerprint — no rescan needed.
			fp:      rec.Tables[0],
			created: time.Unix(0, m.CreatedUnix),
		}
	}
	for _, rec := range st.Records(store.KindPolicy) {
		var m policyMeta
		if err := json.Unmarshal(rec.Meta, &m); err != nil {
			return fmt.Errorf("server: recover policy %q: undecodable metadata: %w", rec.Key, err)
		}
		if m.Policy == nil {
			return fmt.Errorf("server: recover policy %q: no policy document", rec.Key)
		}
		canon, err := m.Policy.Canonical()
		if err != nil {
			return fmt.Errorf("server: recover policy %q: %w", rec.Key, err)
		}
		reg.policies[rec.Key] = &storedPolicy{name: rec.Key, policy: canon, created: time.Unix(0, m.CreatedUnix)}
	}
	// Specs recover before releases: a spec-owned release is only valid while
	// its owning spec references it, which the release loop checks below.
	if err := s.recoverSpecs(st); err != nil {
		return err
	}
	for _, rec := range st.Records(store.KindRelease) {
		var m releaseMeta
		if err := json.Unmarshal(rec.Meta, &m); err != nil {
			return fmt.Errorf("server: recover release %q: undecodable metadata: %w", rec.Key, err)
		}
		if m.Spec != "" {
			// A spec-owned release whose spec is gone or points elsewhere is a
			// straggler from a crash mid-swap; drop it rather than resurrect a
			// release no spec acknowledges.
			sp, ok := reg.specs[m.Spec]
			if !ok || sp.releaseID != rec.Key {
				continue
			}
		}
		load := func(fp string) (*dataset.Table, error) {
			if fp == "" {
				return nil, nil
			}
			t, err := st.Table(fp)
			if t != nil {
				t.SetScanWorkers(s.scanWorkers())
			}
			return t, err
		}
		origin, err := load(m.OriginFP)
		if err != nil || origin == nil {
			return fmt.Errorf("server: recover release %q: origin snapshot: %w", rec.Key, err)
		}
		tbl, err := load(m.TableFP)
		if err != nil {
			return fmt.Errorf("server: recover release %q: released table: %w", rec.Key, err)
		}
		qit, err := load(m.QITFP)
		if err != nil {
			return fmt.Errorf("server: recover release %q: QIT table: %w", rec.Key, err)
		}
		stt, err := load(m.STFP)
		if err != nil {
			return fmt.Errorf("server: recover release %q: ST table: %w", rec.Key, err)
		}
		// The origin reuses the live dataset entry when it is the same
		// snapshot (the common case — replace/delete are refused while a
		// release references the dataset), so reports share one mmap view.
		originDS := reg.datasets[m.Dataset]
		if originDS == nil || originDS.table != origin {
			originDS = &storedDataset{
				name:    m.Dataset,
				family:  m.OriginFamily,
				tenant:  m.OriginTenant,
				table:   origin,
				hier:    hierarchyForFamily(m.OriginFamily),
				created: time.Unix(0, m.OriginCreated),
			}
		}
		reg.releases[rec.Key] = &storedRelease{
			id:        rec.Key,
			seq:       m.Seq,
			dataset:   m.Dataset,
			spec:      m.Spec,
			origin:    originDS,
			algorithm: core.Algorithm(m.Algorithm),
			policyRef: m.PolicyRef,
			params:    m.Params,
			release: &core.Release{
				Table:     tbl,
				QIT:       qit,
				ST:        stt,
				Algorithm: core.Algorithm(m.Algorithm),
				Policy:    m.Policy,
				Node:      m.Node,
				Measured:  m.Measured,
			},
			elapsed: time.Duration(m.ElapsedNS),
			created: time.Unix(0, m.CreatedUnix),
		}
	}
	// Release ids resume past every sequence number ever acknowledged, so a
	// recovered server never reuses the id of a deleted release.
	if v := st.NextSeq(); v > 0 {
		reg.nextID = int(v) - 1
	}
	return nil
}
