package server

import (
	"context"
	"errors"
	"net/http"
	"time"

	"github.com/ppdp/ppdp/internal/core"
	"github.com/ppdp/ppdp/internal/engine"
	"github.com/ppdp/ppdp/internal/jobs"
	"github.com/ppdp/ppdp/internal/policy"
)

// This file is the shared execution path of the service: one validated
// anonymization request becomes one executor job, whether the client asked
// for a synchronous response (POST /v1/anonymize submits and waits) or a
// background one (POST /v1/jobs submits and returns 202). Admission control,
// progress reporting, cancellation and release publication therefore behave
// identically on both paths.

// jobMeta is the request summary a job carries for listings: the dataset,
// the algorithm, and the canonical policy the run enforces.
type jobMeta struct {
	dataset   string
	algorithm string
	policy    *policy.Policy
	policyRef string
	// spec names the release spec a reconciliation job serves ("" for
	// client-submitted anonymizations).
	spec string
}

// preparedRun is a fully validated anonymization ready for the executor: the
// dataset snapshot, the resolved algorithm, the configured pipeline (which
// carries the canonical policy) and the run deadline.
type preparedRun struct {
	req anonymizeRequest
	ds  *storedDataset
	alg core.Algorithm
	// policyRef is the stored-policy name the request referenced ("" for an
	// inline policy or flat parameters); the resolved snapshot lives on
	// anon.Policy().
	policyRef string
	anon      *core.Anonymizer
	timeout   time.Duration
}

// prepareAnonymize resolves and validates an anonymize request for either
// path. It writes the error envelope itself and returns nil when the request
// cannot run.
//
// The privacy criteria arrive as a policy document ("policy"), a stored
// policy name ("policy_ref", pinned as a snapshot here so later deletes
// cannot change the run) or the deprecated flat parameters — mutually
// exclusive forms that all resolve to one canonical policy before any work
// is admitted. Unsupported criterion/algorithm combinations are rejected at
// this stage by the adapter's metadata-driven validation. Flat-parameter
// defaults come from the engine registry's metadata (Param.Default), so the
// server, GET /v1/algorithms and the CLI usage text resolve the same values
// by construction; explicit policies take no defaults.
func (s *Server) prepareAnonymize(w http.ResponseWriter, req anonymizeRequest) *preparedRun {
	if req.Dataset == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "dataset is required")
		return nil
	}
	ds, err := s.reg.getDataset(req.Dataset)
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", "%v", err)
		return nil
	}
	engineAlg, err := engine.Lookup(req.Algorithm)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return nil
	}
	alg := core.Algorithm(engineAlg.Name())
	info := engineAlg.Describe()
	cfg := core.Config{
		Algorithm:        alg,
		Sensitive:        req.Sensitive,
		QuasiIdentifiers: req.QuasiIdentifiers,
		Hierarchies:      ds.hier,
		StrictMondrian:   req.StrictMondrian,
		Workers:          s.cfg.Workers,
	}
	switch {
	case req.Policy != nil && req.PolicyRef != "":
		writeError(w, http.StatusBadRequest, "bad_request", "policy and policy_ref are mutually exclusive")
		return nil
	case req.Policy != nil || req.PolicyRef != "":
		if req.flatParamsSet() {
			writeError(w, http.StatusBadRequest, "bad_request",
				"policy/policy_ref and the deprecated flat privacy parameters are mutually exclusive")
			return nil
		}
		cfg.Policy = req.Policy
		if req.PolicyRef != "" {
			sp, err := s.reg.getPolicy(req.PolicyRef)
			if err != nil {
				writeError(w, http.StatusNotFound, "not_found", "%v", err)
				return nil
			}
			// The stored document is immutable; holding the pointer pins the
			// snapshot for the lifetime of the run and its release.
			cfg.Policy = sp.policy
		}
	default:
		// Deprecated flat surface: metadata-driven defaults, then the same
		// policy translation core applies (only algorithms that declare a
		// parameter get its default — bucketizing algorithms are keyed on l
		// and never receive a k; suppression stays zero where meaningless).
		if p, ok := info.Param("k"); ok && req.K == 0 {
			req.K = p.IntDefault(0)
		}
		maxSuppression := 0.0
		if p, ok := info.Param("max_suppression"); ok {
			maxSuppression = p.FloatDefault(0)
		}
		if req.MaxSuppression != nil {
			maxSuppression = *req.MaxSuppression
		}
		cfg.K = req.K
		cfg.L = req.L
		cfg.T = req.T
		cfg.C = req.C
		cfg.DiversityMode = core.DiversityMode(req.DiversityMode)
		cfg.OrderedSensitive = req.OrderedSensitive
		cfg.MaxSuppression = maxSuppression
	}
	anon, err := core.New(cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_config", "%v", err)
		return nil
	}
	// The run deadline bounds runaway parameter choices; the client may only
	// tighten it.
	timeout := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	return &preparedRun{req: req, ds: ds, alg: alg, policyRef: req.PolicyRef, anon: anon, timeout: timeout}
}

// anonymizeOutcome is a successful run's payload in the executor: the full
// synchronous response body, including the release id when one was stored.
type anonymizeOutcome struct {
	resp anonymizeResponse
}

// anonymizeRunner builds the executor unit both request paths share. The
// runner threads the job's progress sink into the pipeline, and publishes the
// release into the registry only after re-checking the context — a canceled
// job never publishes.
func (s *Server) anonymizeRunner(p *preparedRun, storeRelease bool) jobs.Runner {
	return func(ctx context.Context, progress func(done, total int)) (any, error) {
		if s.runGate != nil {
			s.runGate(ctx)
		}
		start := time.Now()
		rel, err := p.anon.WithProgress(progress).AnonymizeContext(ctx, p.ds.table)
		elapsed := time.Since(start)
		// Every executed run lands in the per-algorithm latency histogram and
		// outcome counter, successful or not (cache hits never reach here).
		s.metrics.observeRun(string(p.alg), elapsed, err)
		if err != nil {
			return nil, err
		}
		if s.cache != nil && !p.req.NoCache {
			if key, kerr := cacheKey(p); kerr == nil {
				s.cache.Put(key, &cachedRun{release: rel, elapsed: elapsed})
			}
		}
		resp := anonymizeResponse{
			Dataset:      p.req.Dataset,
			Algorithm:    string(p.alg),
			Policy:       rel.Policy,
			PolicyRef:    p.policyRef,
			Node:         rel.Node,
			Measurements: measurementsJSONOf(rel.Measured),
			ElapsedMS:    float64(elapsed.Microseconds()) / 1000,
		}
		switch {
		case rel.Table != nil:
			resp.Rows = rel.Table.Len()
			if p.req.IncludeRows {
				resp.Header = rel.Table.Schema().Names()
				resp.Data = rowsOf(rel.Table)
			}
		case rel.QIT != nil:
			resp.Rows = rel.QIT.Len()
		}
		if storeRelease {
			// The cancellation gate before publication: a job canceled during
			// the run (or right at this boundary) must not leave a release
			// behind for a client that asked it to stop.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			id, err := s.reg.putRelease(&storedRelease{
				dataset:   p.req.Dataset,
				origin:    p.ds,
				algorithm: p.alg,
				policyRef: p.policyRef,
				params:    p.req,
				release:   rel,
				elapsed:   elapsed,
				created:   time.Now(),
			})
			if err != nil {
				return nil, err
			}
			resp.ReleaseID = id
		}
		return &anonymizeOutcome{resp: resp}, nil
	}
}

// submit settles a prepared run: from the result cache when an identical run
// was already computed (a hit skips the admission queue entirely), otherwise
// by admitting it into the shared queue under the request's tenant — mapping
// a full queue or an exhausted tenant quota to 429 with a Retry-After hint.
// It writes the error itself and reports ok.
func (s *Server) submit(w http.ResponseWriter, tenant string, p *preparedRun, storeRelease bool) (jobs.Snapshot, bool) {
	if snap, settled, ok := s.serveFromCache(w, tenant, p, storeRelease); settled {
		return snap, ok
	}
	snap, err := s.jobs.Submit(s.anonymizeRunner(p, storeRelease), jobs.Options{
		Tenant: tenant,
		Meta: jobMeta{
			dataset:   p.req.Dataset,
			algorithm: string(p.alg),
			policy:    p.anon.Policy(),
			policyRef: p.policyRef,
		},
		Timeout: p.timeout,
	})
	if err != nil {
		switch {
		case errors.Is(err, jobs.ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "queue_full", "%v", err)
		case errors.Is(err, jobs.ErrTenantQuota):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "tenant_quota", "%v", err)
		default:
			writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		}
		return jobs.Snapshot{}, false
	}
	return snap, true
}

// settleAbandonedWait resolves the race where a synchronous waiter's context
// expired just as its run completed: cancel the job, and when cancellation
// reports the job already finished, return the final snapshot so the handler
// serves the completed outcome. Reports false when the job was still live
// (now canceled) — the caller answers with its timeout/disconnect error.
func (s *Server) settleAbandonedWait(id string) (jobs.Snapshot, bool) {
	if err := s.jobs.Cancel(id); !errors.Is(err, jobs.ErrFinished) {
		return jobs.Snapshot{}, false
	}
	snap, err := s.jobs.Get(id)
	return snap, err == nil
}

// ---- job views ----

// progressJSON is the JSON view of a job's live progress.
type progressJSON struct {
	Done    int     `json:"done"`
	Total   int     `json:"total"`
	Percent float64 `json:"percent"`
}

// jobInfo is the JSON view of one job. Policy is the canonical policy the
// run enforces (the pinned snapshot when the request used a policy_ref);
// listings keep it nil the way they strip Result.
type jobInfo struct {
	ID            string         `json:"id"`
	State         string         `json:"state"`
	Tenant        string         `json:"tenant,omitempty"`
	Dataset       string         `json:"dataset,omitempty"`
	Algorithm     string         `json:"algorithm,omitempty"`
	Policy        *policy.Policy `json:"policy,omitempty"`
	PolicyRef     string         `json:"policy_ref,omitempty"`
	Spec          string         `json:"spec,omitempty"`
	Progress      progressJSON   `json:"progress"`
	QueuePosition int            `json:"queue_position,omitempty"`
	ReleaseID     string         `json:"release_id,omitempty"`
	Created       time.Time      `json:"created"`
	Started       *time.Time     `json:"started,omitempty"`
	Finished      *time.Time     `json:"finished,omitempty"`
	ElapsedMS     float64        `json:"elapsed_ms,omitempty"`
	// Result is the full anonymize response of a succeeded job — the same
	// body the synchronous path returns.
	Result *anonymizeResponse `json:"result,omitempty"`
	// Error carries the failure (or cancellation) in the envelope's
	// code/message shape for failed and canceled jobs.
	Error *apiError `json:"error,omitempty"`
}

func jobJSON(snap jobs.Snapshot) jobInfo {
	info := jobInfo{
		ID:            snap.ID,
		State:         string(snap.State),
		Tenant:        snap.Tenant,
		QueuePosition: snap.QueuePos,
		Created:       snap.Created,
		Progress: progressJSON{
			Done:  snap.Progress.Done,
			Total: snap.Progress.Total,
		},
	}
	if snap.Progress.Total > 0 {
		info.Progress.Percent = 100 * float64(snap.Progress.Done) / float64(snap.Progress.Total)
	}
	if m, ok := snap.Meta.(jobMeta); ok {
		info.Dataset = m.dataset
		info.Algorithm = m.algorithm
		info.Policy = m.policy
		info.PolicyRef = m.policyRef
		info.Spec = m.spec
	}
	if !snap.Started.IsZero() {
		t := snap.Started
		info.Started = &t
	}
	if !snap.Finished.IsZero() {
		t := snap.Finished
		info.Finished = &t
		if !snap.Started.IsZero() {
			info.ElapsedMS = float64(snap.Finished.Sub(snap.Started).Microseconds()) / 1000
		}
	}
	switch snap.State {
	case jobs.Succeeded:
		if out, ok := snap.Result.(*anonymizeOutcome); ok {
			info.ReleaseID = out.resp.ReleaseID
			resp := out.resp
			info.Result = &resp
		}
	case jobs.Failed:
		_, code := classifyAnonymizeError(snap.Err)
		info.Error = &apiError{Code: code, Message: snap.Err.Error()}
	case jobs.Canceled:
		info.Error = &apiError{Code: "canceled", Message: "job canceled"}
	}
	return info
}

// ---- job handlers ----

// handleSubmitJob admits a background anonymization: 202 with the job id and
// a Location header to poll. Background jobs always publish their release
// into the registry on success — the release is the job's durable result, so
// the request's store flag is implied.
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req anonymizeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	p := s.prepareAnonymize(w, req)
	if p == nil {
		return
	}
	snap, ok := s.submit(w, tenantOf(r), p, true)
	if !ok {
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+snap.ID)
	writeJSON(w, http.StatusAccepted, jobJSON(snap))
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	snaps := s.jobs.List()
	out := make([]jobInfo, len(snaps))
	for i, snap := range snaps {
		out[i] = jobJSON(snap)
		// The listing stays a summary: result payloads (potentially full row
		// data under include_rows) and policy documents are served only by
		// GET /v1/jobs/{id}.
		out[i].Result = nil
		out[i].Policy = nil
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	snap, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, jobJSON(snap))
}

// handleCancelJob cancels a queued or running job. Cancellation of a running
// job is asynchronous — the algorithm observes it at its next unit of work —
// so the endpoint answers 202 with the current snapshot; polling the job
// shows the canceled state once the run drains.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	err := s.jobs.Cancel(id)
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeError(w, http.StatusNotFound, "not_found", "%v", err)
		return
	case errors.Is(err, jobs.ErrFinished):
		writeError(w, http.StatusConflict, "conflict", "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	snap, err := s.jobs.Get(id)
	if err != nil {
		// Canceled and already evicted between the two calls; report the
		// terminal state without a snapshot.
		writeJSON(w, http.StatusAccepted, jobInfo{ID: id, State: string(jobs.Canceled)})
		return
	}
	writeJSON(w, http.StatusAccepted, jobJSON(snap))
}
