package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// This file covers the tenant-aware admission layer over real HTTP: API-key
// authentication, the per-tenant token-bucket rate limiter, per-tenant
// dataset/job quotas, and the round-robin queue positions the fair scheduler
// reports. Timing is controlled with the injectable clock (Config.Now) and
// the gated runner hook (Server.runGate), so no test sleeps.

// testKeys is the key→tenant map used by the admission tests: two keys for
// acme (key rotation) and one for globex.
func testKeys() map[string]string {
	return map[string]string{"k-acme-1": "acme", "k-acme-2": "acme", "k-globex": "globex"}
}

// newJSONRequest builds a request with an optional JSON body.
func newJSONRequest(t testing.TB, method, url string, body any) *http.Request {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// doAuthJSON is doJSON with an X-API-Key header and access to the response
// headers.
func doAuthJSON(t testing.TB, method, url, key string, body any) (int, http.Header, map[string]any) {
	t.Helper()
	req := newJSONRequest(t, method, url, body)
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]any{}
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("%s %s: non-JSON response %d: %s", method, url, resp.StatusCode, raw)
		}
	}
	return resp.StatusCode, resp.Header, out
}

func TestParseAPIKeys(t *testing.T) {
	t.Run("valid", func(t *testing.T) {
		keys, err := ParseAPIKeys(strings.NewReader(
			"# ops keys\n\n  k-acme-1   acme\nk-acme-2 acme\nk-globex globex\n"))
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != 3 || keys["k-acme-1"] != "acme" || keys["k-globex"] != "globex" {
			t.Errorf("keys = %v", keys)
		}
	})
	for name, input := range map[string]string{
		"duplicate key":  "k1 acme\nk1 globex\n",
		"malformed line": "k1 acme extra\n",
		"empty file":     "# nothing but comments\n",
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseAPIKeys(strings.NewReader(input)); err == nil {
				t.Errorf("ParseAPIKeys(%q) succeeded, want error", input)
			}
		})
	}
}

func TestAuthenticationGatesEndpoints(t *testing.T) {
	ts, _ := newTestServer(t, Config{APIKeys: testKeys()})

	status, _, body := doAuthJSON(t, "GET", ts.URL+"/v1/algorithms", "", nil)
	if status != http.StatusUnauthorized || errorCode(t, body) != "unauthorized" {
		t.Errorf("no key: %d %v, want 401 unauthorized", status, body)
	}
	status, _, body = doAuthJSON(t, "GET", ts.URL+"/v1/algorithms", "k-wrong", nil)
	if status != http.StatusUnauthorized || errorCode(t, body) != "unauthorized" {
		t.Errorf("unknown key: %d %v, want 401 unauthorized", status, body)
	}
	if status, _, _ := doAuthJSON(t, "GET", ts.URL+"/v1/algorithms", "k-acme-1", nil); status != http.StatusOK {
		t.Errorf("X-API-Key: %d, want 200", status)
	}

	// The Authorization: Bearer form resolves the same tenant.
	req := newJSONRequest(t, "GET", ts.URL+"/v1/algorithms", nil)
	req.Header.Set("Authorization", "Bearer k-globex")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("Bearer key: %d, want 200", resp.StatusCode)
	}

	// Liveness and metrics stay reachable without a key.
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s without key: %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestTenantLimiter drives the token bucket directly with a fake clock.
func TestTenantLimiter(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newTenantLimiter(2, 2, func() time.Time { return now })

	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("acme"); !ok {
			t.Fatalf("burst request %d denied", i+1)
		}
	}
	ok, wait := l.allow("acme")
	if ok {
		t.Fatal("third request within the burst allowed")
	}
	if wait <= 0 || wait > 500*time.Millisecond {
		t.Errorf("wait = %v, want (0, 500ms] at 2 req/s", wait)
	}
	// Buckets are per tenant: globex is untouched by acme's exhaustion.
	if ok, _ := l.allow("globex"); !ok {
		t.Error("other tenant denied while acme is throttled")
	}
	// Half a second refills one token at 2 req/s — exactly one more request.
	now = now.Add(500 * time.Millisecond)
	if ok, _ := l.allow("acme"); !ok {
		t.Error("request after refill denied")
	}
	if ok, _ := l.allow("acme"); ok {
		t.Error("second request after a one-token refill allowed")
	}
}

func TestRateLimitOverHTTP(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(2000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	ts, _ := newTestServer(t, Config{
		APIKeys: testKeys(), TenantRate: 1, TenantBurst: 1, Now: clock,
	})

	if status, _, _ := doAuthJSON(t, "GET", ts.URL+"/v1/algorithms", "k-acme-1", nil); status != http.StatusOK {
		t.Fatalf("first request: %d, want 200", status)
	}
	status, header, body := doAuthJSON(t, "GET", ts.URL+"/v1/algorithms", "k-acme-2", nil)
	if status != http.StatusTooManyRequests || errorCode(t, body) != "rate_limited" {
		t.Fatalf("second request: %d %v, want 429 rate_limited", status, body)
	}
	if header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	// The bucket is per tenant, not per key or global.
	if status, _, _ := doAuthJSON(t, "GET", ts.URL+"/v1/algorithms", "k-globex", nil); status != http.StatusOK {
		t.Errorf("other tenant while acme throttled: %d, want 200", status)
	}
	// Exempt paths are never throttled, even for the exhausted tenant.
	if status, _, _ := doAuthJSON(t, "GET", ts.URL+"/healthz", "k-acme-1", nil); status != http.StatusOK {
		t.Errorf("healthz while throttled: %d, want 200", status)
	}
	advance(time.Second)
	if status, _, _ := doAuthJSON(t, "GET", ts.URL+"/v1/algorithms", "k-acme-1", nil); status != http.StatusOK {
		t.Errorf("request after refill: %d, want 200", status)
	}
}

func TestTenantDatasetQuota(t *testing.T) {
	ts, _ := newTestServer(t, Config{APIKeys: testKeys(), TenantMaxDatasets: 1})
	gen := func(key, name string) (int, map[string]any) {
		status, _, body := doAuthJSON(t, "POST", ts.URL+"/v1/datasets", key,
			map[string]any{"name": name, "family": "census", "rows": 50})
		return status, body
	}

	if status, body := gen("k-acme-1", "acme-a"); status != http.StatusCreated {
		t.Fatalf("first dataset: %d %v", status, body)
	}
	status, body := gen("k-acme-2", "acme-b")
	if status != http.StatusTooManyRequests || errorCode(t, body) != "tenant_quota" {
		t.Fatalf("over-quota dataset: %d %v, want 429 tenant_quota", status, body)
	}
	// The quota is per tenant: globex still has its slot.
	if status, body := gen("k-globex", "globex-a"); status != http.StatusCreated {
		t.Errorf("other tenant's dataset: %d %v", status, body)
	}
	// Freeing the slot restores the quota.
	if status, _, body := doAuthJSON(t, "DELETE", ts.URL+"/v1/datasets/acme-a", "k-acme-1", nil); status != http.StatusNoContent {
		t.Fatalf("delete dataset: %d %v", status, body)
	}
	if status, body := gen("k-acme-1", "acme-c"); status != http.StatusCreated {
		t.Errorf("dataset after delete: %d %v", status, body)
	}
}

// TestPutDatasetTenantQuotaReplace exercises the registry's quota accounting
// directly: replacing one's own dataset must not consume a second slot.
func TestPutDatasetTenantQuotaReplace(t *testing.T) {
	r := newRegistry(0, 0, 0)
	if err := r.putDataset(&storedDataset{name: "a", tenant: "acme"}, false, 1); err != nil {
		t.Fatalf("first dataset: %v", err)
	}
	if err := r.putDataset(&storedDataset{name: "b", tenant: "acme"}, false, 1); !errors.Is(err, errTenantQuota) {
		t.Fatalf("over-quota dataset: %v, want errTenantQuota", err)
	}
	if err := r.putDataset(&storedDataset{name: "a", tenant: "acme"}, true, 1); err != nil {
		t.Errorf("replacing own dataset at quota: %v, want nil", err)
	}
	if err := r.putDataset(&storedDataset{name: "b", tenant: "globex"}, false, 1); err != nil {
		t.Errorf("other tenant's dataset: %v, want nil", err)
	}
}

// TestTenantJobQuotaAndFairQueueOverHTTP holds the single worker at the run
// gate and checks (a) the per-tenant job quota answers 429 tenant_quota while
// other tenants submit freely, and (b) the queue positions the API reports
// follow round-robin dispatch order, not submission order.
func TestTenantJobQuotaAndFairQueueOverHTTP(t *testing.T) {
	ts, srv := newTestServer(t, Config{
		APIKeys: testKeys(), JobWorkers: 1, QueueDepth: 8, TenantMaxJobs: 3,
	})
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	defer close(release)
	srv.runGate = func(ctx context.Context) {
		entered <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	seedAuthDataset := func(key, name string) {
		status, _, body := doAuthJSON(t, "POST", ts.URL+"/v1/datasets", key,
			map[string]any{"name": name, "family": "census", "rows": 100, "seed": 9})
		if status != http.StatusCreated {
			t.Fatalf("seed %s: %d %v", name, status, body)
		}
	}
	seedAuthDataset("k-acme-1", "census")
	submit := func(key string) (int, map[string]any) {
		status, _, body := doAuthJSON(t, "POST", ts.URL+"/v1/jobs", key,
			map[string]any{"dataset": "census", "k": 5})
		return status, body
	}

	// acme: one running (held at the gate) plus two queued = at its cap of 3.
	status, body := submit("k-acme-1")
	if status != http.StatusAccepted {
		t.Fatalf("acme job 1: %d %v", status, body)
	}
	<-entered
	var acmeQueued []string
	for i := 0; i < 2; i++ {
		status, body := submit("k-acme-1")
		if status != http.StatusAccepted {
			t.Fatalf("acme job %d: %d %v", i+2, status, body)
		}
		acmeQueued = append(acmeQueued, body["id"].(string))
	}
	status, body = submit("k-acme-2")
	if status != http.StatusTooManyRequests || errorCode(t, body) != "tenant_quota" {
		t.Fatalf("acme over quota: %d %v, want 429 tenant_quota", status, body)
	}

	// globex is not affected by acme's quota, and round-robin dispatch puts
	// its first job ahead of acme's second queued job: expected drain order
	// is acme[0], globex, acme[1].
	status, body = submit("k-globex")
	if status != http.StatusAccepted {
		t.Fatalf("globex job: %d %v", status, body)
	}
	globexID := body["id"].(string)
	wantPos := map[string]float64{acmeQueued[0]: 1, globexID: 2, acmeQueued[1]: 3}
	for id, want := range wantPos {
		_, _, info := doAuthJSON(t, "GET", ts.URL+"/v1/jobs/"+id, "k-globex", nil)
		if got, _ := info["queue_position"].(float64); got != want {
			t.Errorf("job %s queue_position = %v, want %v (tenant=%v)", id, got, want, info["tenant"])
		}
	}
	// The job detail carries the owning tenant.
	_, _, info := doAuthJSON(t, "GET", ts.URL+"/v1/jobs/"+globexID, "k-globex", nil)
	if info["tenant"] != "globex" {
		t.Errorf("job tenant = %v, want globex", info["tenant"])
	}
}
