package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/ppdp/ppdp/internal/republish"
	"github.com/ppdp/ppdp/internal/synth"
)

// censusChunks renders one synthetic census population as CSV slices split at
// the given row boundaries. Later chunks hold brand-new individuals, so
// appending them models the paper's sequential-republication setting: each
// generation adds records, none are updated in place.
func censusChunks(t testing.TB, bounds ...int) [][]byte {
	t.Helper()
	total := bounds[len(bounds)-1]
	tbl := synth.Census(total, 7)
	out := make([][]byte, 0, len(bounds))
	lo := 0
	for _, hi := range bounds {
		idx := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			idx = append(idx, i)
		}
		sub, err := tbl.Select(idx)
		if err != nil {
			t.Fatalf("select rows [%d,%d): %v", lo, hi, err)
		}
		var buf bytes.Buffer
		if err := sub.WriteCSV(&buf); err != nil {
			t.Fatalf("write csv: %v", err)
		}
		out = append(out, buf.Bytes())
		lo = hi
	}
	return out
}

// sendCSV issues a raw CSV request (dataset upload or row append) and decodes
// the JSON response.
func sendCSV(t testing.TB, method, url string, body []byte) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]any{}
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("%s %s: non-JSON response %d: %s", method, url, resp.StatusCode, raw)
		}
	}
	return resp.StatusCode, out
}

// pollSpec polls GET /v1/specs/{name} until pred accepts the body.
func pollSpec(t testing.TB, ts *httptest.Server, name string, pred func(map[string]any) bool) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, body := doJSON(t, "GET", ts.URL+"/v1/specs/"+name, nil)
		if status != http.StatusOK {
			t.Fatalf("poll spec %s: %d %v", name, status, body)
		}
		if pred(body) {
			return body
		}
		if time.Now().After(deadline) {
			t.Fatalf("spec %s did not settle: %v", name, body)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// specSettled matches an idle spec reconciled up to the given dataset
// generation.
func specSettled(gen int) func(map[string]any) bool {
	return func(b map[string]any) bool {
		return b["state"] == "idle" && b["reconciled_generation"] == float64(gen)
	}
}

// TestSpecLifecycleE2E is the acceptance walk for the reconciler subsystem
// with a one-shot algorithm: declare a spec, watch every dataset generation
// reconcile into a fresh release with an atomic id swap, and verify the
// pinning rules (spec-owned releases and spec-watched datasets refuse
// deletion until the spec goes away).
func TestSpecLifecycleE2E(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 2})
	chunks := censusChunks(t, 200, 250, 300)

	if status, body := sendCSV(t, "PUT", ts.URL+"/v1/datasets/pop?family=census", chunks[0]); status != http.StatusCreated {
		t.Fatalf("upload: %d %v", status, body)
	}
	status, body := doJSON(t, "POST", ts.URL+"/v1/specs", map[string]any{
		"name": "live", "dataset": "pop", "algorithm": "mondrian", "k": 4})
	if status != http.StatusCreated {
		t.Fatalf("create spec: %d %v", status, body)
	}

	body = pollSpec(t, ts, "live", specSettled(1))
	rel1, _ := body["release_id"].(string)
	if rel1 == "" {
		t.Fatalf("no release after first reconciliation: %v", body)
	}
	if status, _ := doJSON(t, "GET", ts.URL+"/v1/releases/"+rel1, nil); status != http.StatusOK {
		t.Fatalf("release %s not readable: %d", rel1, status)
	}
	// The spec owns its release: ad-hoc deletion is refused.
	status, body = doJSON(t, "DELETE", ts.URL+"/v1/releases/"+rel1, nil)
	if status != http.StatusConflict || errorCode(t, body) != "spec_pinned" {
		t.Fatalf("delete owned release: %d %v", status, body)
	}

	// Each append bumps the generation and reconciles to a fresh release;
	// the previous one is swapped out atomically and disappears.
	if status, body := sendCSV(t, "POST", ts.URL+"/v1/datasets/pop/rows", chunks[1]); status != http.StatusOK || body["rows"] != float64(250) {
		t.Fatalf("append 1: %d %v", status, body)
	}
	body = pollSpec(t, ts, "live", specSettled(2))
	rel2, _ := body["release_id"].(string)
	if rel2 == "" || rel2 == rel1 {
		t.Fatalf("expected a fresh release after append, got %q (was %q)", rel2, rel1)
	}
	if status, _ := doJSON(t, "GET", ts.URL+"/v1/releases/"+rel1, nil); status != http.StatusNotFound {
		t.Fatalf("old release %s should be gone after swap: %d", rel1, status)
	}

	if status, body := sendCSV(t, "POST", ts.URL+"/v1/datasets/pop/rows", chunks[2]); status != http.StatusOK || body["rows"] != float64(300) {
		t.Fatalf("append 2: %d %v", status, body)
	}
	body = pollSpec(t, ts, "live", specSettled(3))
	rel3, _ := body["release_id"].(string)
	if rel3 == "" || rel3 == rel2 {
		t.Fatalf("expected a third release, got %q (was %q)", rel3, rel2)
	}

	// A spec-watched dataset refuses deletion with a machine-readable code.
	status, body = doJSON(t, "DELETE", ts.URL+"/v1/datasets/pop", nil)
	if status != http.StatusConflict || errorCode(t, body) != "spec_pinned" {
		t.Fatalf("delete watched dataset: %d %v", status, body)
	}

	// Deleting the spec cascades to its release and releases the dataset.
	if status, body := doJSON(t, "DELETE", ts.URL+"/v1/specs/live", nil); status != http.StatusNoContent {
		t.Fatalf("delete spec: %d %v", status, body)
	}
	if status, _ := doJSON(t, "GET", ts.URL+"/v1/specs/live", nil); status != http.StatusNotFound {
		t.Fatalf("spec should be gone: %d", status)
	}
	if status, _ := doJSON(t, "GET", ts.URL+"/v1/releases/"+rel3, nil); status != http.StatusNotFound {
		t.Fatalf("owned release should cascade with the spec: %d", status)
	}
	if status, body := doJSON(t, "DELETE", ts.URL+"/v1/datasets/pop", nil); status != http.StatusNoContent {
		t.Fatalf("delete dataset after spec removal: %d %v", status, body)
	}
}

// TestSpecMInvarianceSequential drives the paper's sequential-republication
// scenario end to end: a spec with an m-invariance policy accumulates a
// release history across three dataset generations, and the accumulated
// QIT/ST tables pass the cross-release invariance checker.
func TestSpecMInvarianceSequential(t *testing.T) {
	ts, srv := newTestServer(t, Config{Workers: 2})
	chunks := censusChunks(t, 200, 250, 300)

	if status, body := sendCSV(t, "PUT", ts.URL+"/v1/datasets/pop?family=census", chunks[0]); status != http.StatusCreated {
		t.Fatalf("upload: %d %v", status, body)
	}
	status, body := doJSON(t, "POST", ts.URL+"/v1/specs", map[string]any{
		"name": "seq", "dataset": "pop", "algorithm": "republish",
		"policy": map[string]any{"criteria": []map[string]any{
			{"type": "m-invariance", "m": 2, "id": "name"},
		}},
	})
	if status != http.StatusCreated {
		t.Fatalf("create spec: %d %v", status, body)
	}
	pollSpec(t, ts, "seq", specSettled(1))
	for i, chunk := range chunks[1:] {
		if status, body := sendCSV(t, "POST", ts.URL+"/v1/datasets/pop/rows", chunk); status != http.StatusOK {
			t.Fatalf("append %d: %d %v", i+1, status, body)
		}
		pollSpec(t, ts, "seq", specSettled(2+i))
	}

	body = pollSpec(t, ts, "seq", specSettled(3))
	hist, _ := body["history"].([]any)
	if len(hist) != 3 {
		t.Fatalf("history = %v, want 3 entries", body["history"])
	}
	for i, h := range hist {
		entry := h.(map[string]any)
		if entry["version"] != float64(i+1) {
			t.Errorf("history[%d].version = %v", i, entry["version"])
		}
		if rows, _ := entry["rows"].(float64); rows < 200 {
			t.Errorf("history[%d].rows = %v", i, entry["rows"])
		}
	}
	inv, _ := body["invariant"].(map[string]any)
	if inv == nil || inv["ok"] != true {
		t.Fatalf("invariant verdict = %v, want ok", body["invariant"])
	}

	// The stored release carries the criterion verdict in its measurements.
	relID, _ := body["release_id"].(string)
	status, rel := doJSON(t, "GET", ts.URL+"/v1/releases/"+relID, nil)
	if status != http.StatusOK {
		t.Fatalf("release: %d %v", status, rel)
	}

	// Independently re-run the checker over the accumulated history.
	run, err := srv.reg.specRunSnapshot("seq")
	if err != nil {
		t.Fatal(err)
	}
	if len(run.history) != 3 {
		t.Fatalf("stored history = %d releases", len(run.history))
	}
	ok, detail, err := republish.CheckInvariance(run.history, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("accumulated history violates m-invariance: %s", detail)
	}
}

// TestSpecNoopShortCircuit replaces a dataset with byte-identical content:
// the generation bumps, but the fingerprint matches the reconciled one, so
// the reconciler must short-circuit without re-anonymizing — the release id
// stays put and the noop counter moves.
func TestSpecNoopShortCircuit(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 2})
	chunks := censusChunks(t, 200)

	if status, body := sendCSV(t, "PUT", ts.URL+"/v1/datasets/pop?family=census", chunks[0]); status != http.StatusCreated {
		t.Fatalf("upload: %d %v", status, body)
	}
	if status, body := doJSON(t, "POST", ts.URL+"/v1/specs", map[string]any{
		"name": "live", "dataset": "pop", "algorithm": "mondrian", "k": 4}); status != http.StatusCreated {
		t.Fatalf("create spec: %d %v", status, body)
	}
	body := pollSpec(t, ts, "live", specSettled(1))
	rel1, _ := body["release_id"].(string)

	if status, body := sendCSV(t, "PUT", ts.URL+"/v1/datasets/pop?family=census", chunks[0]); status != http.StatusCreated {
		t.Fatalf("re-upload: %d %v", status, body)
	}
	body = pollSpec(t, ts, "live", specSettled(2))
	if rel2, _ := body["release_id"].(string); rel2 != rel1 {
		t.Fatalf("release changed on identical content: %q -> %q", rel1, rel2)
	}

	status, health := doJSON(t, "GET", ts.URL+"/healthz", nil)
	if status != http.StatusOK {
		t.Fatalf("healthz: %d", status)
	}
	recon, _ := health["reconcile"].(map[string]any)
	if recon == nil {
		t.Fatalf("healthz has no reconcile block: %v", health)
	}
	if noop, _ := recon["noop"].(float64); noop < 1 {
		t.Errorf("reconcile.noop = %v, want >= 1", recon["noop"])
	}
	if lag, _ := recon["generation_lag"].(float64); lag != 0 {
		t.Errorf("reconcile.generation_lag = %v, want 0", recon["generation_lag"])
	}
}

// TestSpecValidation covers the declaration-time rejections.
func TestSpecValidation(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1})
	seedDataset(t, ts, "census", "census", 200)

	// Missing name.
	status, body := doJSON(t, "POST", ts.URL+"/v1/specs", map[string]any{
		"dataset": "census", "algorithm": "mondrian", "k": 4})
	if status != http.StatusBadRequest {
		t.Fatalf("missing name: %d %v", status, body)
	}
	// Unknown dataset.
	status, body = doJSON(t, "POST", ts.URL+"/v1/specs", map[string]any{
		"name": "x", "dataset": "nope", "algorithm": "mondrian", "k": 4})
	if status != http.StatusNotFound {
		t.Fatalf("unknown dataset: %d %v", status, body)
	}
	// An m-invariance criterion paired with a one-shot algorithm.
	status, body = doJSON(t, "POST", ts.URL+"/v1/specs", map[string]any{
		"name": "x", "dataset": "census", "algorithm": "mondrian",
		"policy": map[string]any{"criteria": []map[string]any{
			{"type": "m-invariance", "m": 2, "id": "name"},
		}}})
	if status != http.StatusBadRequest || errorCode(t, body) != "bad_config" {
		t.Fatalf("m-invariance on mondrian: %d %v", status, body)
	}
	// Duplicate spec name.
	if status, body := doJSON(t, "POST", ts.URL+"/v1/specs", map[string]any{
		"name": "x", "dataset": "census", "algorithm": "mondrian", "k": 4}); status != http.StatusCreated {
		t.Fatalf("create spec: %d %v", status, body)
	}
	status, body = doJSON(t, "POST", ts.URL+"/v1/specs", map[string]any{
		"name": "x", "dataset": "census", "algorithm": "mondrian", "k": 4})
	if status != http.StatusConflict || errorCode(t, body) != "conflict" {
		t.Fatalf("duplicate spec: %d %v", status, body)
	}
	// The listing strips policy documents but keeps the declaration.
	status, body = doJSON(t, "GET", ts.URL+"/v1/specs", nil)
	if status != http.StatusOK {
		t.Fatalf("list specs: %d %v", status, body)
	}
	list, _ := body["specs"].([]any)
	if len(list) != 1 {
		t.Fatalf("specs = %v", body)
	}
	if entry := list[0].(map[string]any); entry["name"] != "x" || entry["policy"] != nil {
		t.Fatalf("listing entry = %v", entry)
	}
}

// TestSpecReconcileFailureSurfaces declares a spec whose runs can never
// succeed (m=10 against a two-valued sensitive column fails m-eligibility)
// and asserts the failure is observable: backoff state with the last error on
// the spec, and the error counter in /healthz.
func TestSpecReconcileFailureSurfaces(t *testing.T) {
	ts, _ := newTestServer(t, Config{
		Workers: 1, ReconcileBackoff: 5 * time.Millisecond, ReconcileBackoffMax: 50 * time.Millisecond})
	seedDataset(t, ts, "census", "census", 200)

	status, body := doJSON(t, "POST", ts.URL+"/v1/specs", map[string]any{
		"name": "doomed", "dataset": "census", "algorithm": "republish",
		"policy": map[string]any{"criteria": []map[string]any{
			{"type": "m-invariance", "m": 10, "id": "name"},
		}}})
	if status != http.StatusCreated {
		t.Fatalf("create spec: %d %v", status, body)
	}

	body = pollSpec(t, ts, "doomed", func(b map[string]any) bool {
		retries, _ := b["retries"].(float64)
		return b["state"] == "backoff" && retries >= 2
	})
	if msg, _ := body["last_error"].(string); !strings.Contains(msg, "m-eligibility") {
		t.Errorf("last_error = %q, want the eligibility violation", msg)
	}
	if body["release_id"] != nil && body["release_id"] != "" {
		t.Errorf("failed spec must not own a release: %v", body["release_id"])
	}

	status, health := doJSON(t, "GET", ts.URL+"/healthz", nil)
	if status != http.StatusOK {
		t.Fatalf("healthz: %d", status)
	}
	recon, _ := health["reconcile"].(map[string]any)
	if errs, _ := recon["errors"].(float64); errs < 1 {
		t.Errorf("reconcile.errors = %v, want >= 1", recon["errors"])
	}
	if retries, _ := recon["retries"].(float64); retries < 1 {
		t.Errorf("reconcile.retries = %v, want >= 1", recon["retries"])
	}
}

// TestRepublishRunErrorPaths exercises the republish algorithm's error
// classification through the synchronous anonymize endpoint under
// policy-driven configuration: an id column the dataset does not have is the
// client's configuration fault (400), a satisfiable-looking policy the data
// cannot meet is 422.
func TestRepublishRunErrorPaths(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1})
	seedDataset(t, ts, "census", "census", 200)

	status, body := doJSON(t, "POST", ts.URL+"/v1/anonymize", map[string]any{
		"dataset": "census", "algorithm": "republish",
		"policy": map[string]any{"criteria": []map[string]any{
			{"type": "m-invariance", "m": 2, "id": "nope"},
		}}})
	if status != http.StatusBadRequest || errorCode(t, body) != "bad_config" {
		t.Fatalf("unknown id column: %d %v", status, body)
	}

	status, body = doJSON(t, "POST", ts.URL+"/v1/anonymize", map[string]any{
		"dataset": "census", "algorithm": "republish",
		"policy": map[string]any{"criteria": []map[string]any{
			{"type": "m-invariance", "m": 10, "id": "name"},
		}}})
	if status != http.StatusUnprocessableEntity || errorCode(t, body) != "unsatisfiable" {
		t.Fatalf("m=10 against two sensitive values: %d %v", status, body)
	}
}

// TestAppendRowsValidation covers the append endpoint's rejections: unknown
// dataset, malformed CSV, and a CSV that parses under a different schema.
func TestAppendRowsValidation(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1})
	seedDataset(t, ts, "census", "census", 100)

	status, body := sendCSV(t, "POST", ts.URL+"/v1/datasets/nope/rows", []byte("a,b\n1,2\n"))
	if status != http.StatusNotFound {
		t.Fatalf("unknown dataset: %d %v", status, body)
	}
	status, body = sendCSV(t, "POST", ts.URL+"/v1/datasets/census/rows", []byte("a,b\n1,2,3\n"))
	if status != http.StatusBadRequest {
		t.Fatalf("malformed csv: %d %v", status, body)
	}
	// A hospital-schema CSV does not parse under the census family.
	var hosp bytes.Buffer
	if err := synth.Hospital(20, 1).WriteCSV(&hosp); err != nil {
		t.Fatal(err)
	}
	status, body = sendCSV(t, "POST", ts.URL+"/v1/datasets/census/rows", hosp.Bytes())
	if status != http.StatusBadRequest {
		t.Fatalf("cross-schema append: %d %v", status, body)
	}
	code := errorCode(t, body)
	if code != "schema_mismatch" && code != "bad_csv" {
		t.Fatalf("cross-schema append code = %q", code)
	}
	// The dataset is untouched.
	status, body = doJSON(t, "GET", ts.URL+"/v1/datasets/census", nil)
	if status != http.StatusOK || body["rows"] != float64(100) {
		t.Fatalf("dataset after rejected appends: %d %v", status, body)
	}
}

// TestPersistSpecRestart is the durability acceptance test for the
// reconciler: a spec with an m-invariance history survives a restart
// byte-identically, and reconciliation resumes on the recovered state — a
// post-restart append must land release 3 on a history whose versions chain
// across the restart.
func TestPersistSpecRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, Workers: 2}
	ts, srv := bootPersistent(t, cfg)
	chunks := censusChunks(t, 200, 250, 300)

	if status, body := sendCSV(t, "PUT", ts.URL+"/v1/datasets/pop?family=census", chunks[0]); status != http.StatusCreated {
		t.Fatalf("upload: %d %v", status, body)
	}
	if status, body := doJSON(t, "POST", ts.URL+"/v1/specs", map[string]any{
		"name": "seq", "dataset": "pop", "algorithm": "republish",
		"policy": map[string]any{"criteria": []map[string]any{
			{"type": "m-invariance", "m": 2, "id": "name"},
		}}}); status != http.StatusCreated {
		t.Fatalf("create spec: %d %v", status, body)
	}
	pollSpec(t, ts, "seq", specSettled(1))
	if status, body := sendCSV(t, "POST", ts.URL+"/v1/datasets/pop/rows", chunks[1]); status != http.StatusOK {
		t.Fatalf("append: %d %v", status, body)
	}
	body := pollSpec(t, ts, "seq", specSettled(2))
	relID, _ := body["release_id"].(string)
	if relID == "" {
		t.Fatalf("no release: %v", body)
	}

	reads := []string{
		"/v1/specs",
		"/v1/specs/seq",
		"/v1/releases/" + relID,
		"/v1/datasets/pop",
	}
	golden := map[string][]byte{}
	for _, path := range reads {
		status, raw := getRaw(t, ts.URL+path, "")
		if status != http.StatusOK {
			t.Fatalf("golden read %s: %d %s", path, status, raw)
		}
		golden[path] = raw
	}
	_, goldenCSV := getRaw(t, ts.URL+"/v1/releases/"+relID+"/data", "text/csv")

	ts.Close()
	srv.Close()

	ts2, _ := bootPersistent(t, cfg)
	pollSpec(t, ts2, "seq", specSettled(2))
	for _, path := range reads {
		status, raw := getRaw(t, ts2.URL+path, "")
		if status != http.StatusOK {
			t.Fatalf("recovered read %s: %d %s", path, status, raw)
		}
		if !bytes.Equal(raw, golden[path]) {
			t.Errorf("%s diverged after restart:\n  before: %s\n  after:  %s", path, golden[path], raw)
		}
	}
	if _, raw := getRaw(t, ts2.URL+"/v1/releases/"+relID+"/data", "text/csv"); !bytes.Equal(raw, goldenCSV) {
		t.Errorf("release data diverged after restart")
	}

	// Reconciliation resumes on the recovered history: the next generation
	// publishes release 3 and the full three-release chain stays invariant.
	if status, body := sendCSV(t, "POST", ts2.URL+"/v1/datasets/pop/rows", chunks[2]); status != http.StatusOK {
		t.Fatalf("append after restart: %d %v", status, body)
	}
	body = pollSpec(t, ts2, "seq", specSettled(3))
	hist, _ := body["history"].([]any)
	if len(hist) != 3 {
		t.Fatalf("history after restart = %v, want 3 entries", body["history"])
	}
	for i, h := range hist {
		if v := h.(map[string]any)["version"]; v != float64(i+1) {
			t.Fatalf("history[%d].version = %v after restart", i, v)
		}
	}
	if inv, _ := body["invariant"].(map[string]any); inv == nil || inv["ok"] != true {
		t.Fatalf("invariant after restart = %v", body["invariant"])
	}
}

// TestPersistSpecBackoffRestart restarts mid-backoff: a spec whose runs fail
// must come back tracked and still lagging, not silently marked clean.
func TestPersistSpecBackoffRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, Workers: 1,
		ReconcileBackoff: 5 * time.Millisecond, ReconcileBackoffMax: 50 * time.Millisecond}
	ts, srv := bootPersistent(t, cfg)
	seedDataset(t, ts, "census", "census", 200)
	if status, body := doJSON(t, "POST", ts.URL+"/v1/specs", map[string]any{
		"name": "doomed", "dataset": "census", "algorithm": "republish",
		"policy": map[string]any{"criteria": []map[string]any{
			{"type": "m-invariance", "m": 10, "id": "name"},
		}}}); status != http.StatusCreated {
		t.Fatalf("create spec: %d %v", status, body)
	}
	pollSpec(t, ts, "doomed", func(b map[string]any) bool {
		return b["state"] == "backoff"
	})
	ts.Close()
	srv.Close()

	ts2, _ := bootPersistent(t, cfg)
	body := pollSpec(t, ts2, "doomed", func(b map[string]any) bool {
		return b["state"] == "backoff"
	})
	if gen, _ := body["reconciled_generation"].(float64); gen != 0 {
		t.Errorf("reconciled_generation = %v after restart, want 0 (runs never succeeded)", gen)
	}
	if msg, _ := body["last_error"].(string); !strings.Contains(msg, "m-eligibility") {
		t.Errorf("last_error = %q after restart", msg)
	}
}

// sanity guard: the chunk helper really produces disjoint individuals, so the
// sequential tests exercise m-invariance growth rather than re-publication of
// the same population.
func TestCensusChunksDisjoint(t *testing.T) {
	chunks := censusChunks(t, 3, 6)
	for i, c := range chunks {
		if !bytes.HasPrefix(c, []byte("name,")) {
			t.Fatalf("chunk %d lacks the census header: %q", i, c[:20])
		}
	}
	if id := fmt.Sprintf("person-%06d", 0); !bytes.Contains(chunks[0], []byte(id)) || bytes.Contains(chunks[1], []byte(id)) {
		t.Fatalf("chunks overlap on %s", id)
	}
}
