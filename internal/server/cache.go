package server

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/ppdp/ppdp/internal/core"
	"github.com/ppdp/ppdp/internal/jobs"
)

// This file wires the cross-request result cache (internal/resultcache) into
// the shared execution path. Every algorithm is deterministic for a fixed
// (dataset, policy, parameters) input — worker counts never change released
// bytes (see the per-algorithm equivalence tests) — so a release computed
// once can answer every later identical request. The cache key is built from
// the dataset's content fingerprint rather than its registry name, which
// makes invalidation implicit: replacing a dataset under the same name
// changes its fingerprint, and the stale entry simply stops being reachable
// until the LRU evicts it.

// cachedRun is one memoized successful run: the published release and how
// long the original computation took. The response body is rebuilt per
// request (store and include_rows shape responses, not results), so only the
// release is cached.
type cachedRun struct {
	release *core.Release
	elapsed time.Duration
}

// cacheKeySep joins key components; components are either fingerprints,
// registry-validated names or canonical JSON, so a 0x1f byte cannot occur
// inside one and the join is collision-free.
const cacheKeySep = "\x1f"

// cacheKey derives the memoization key of a prepared run. Components, in
// order: the dataset's content fingerprint (schema + rows), its family, the
// algorithm, the canonical policy document (which subsumes every flat
// privacy parameter: k, l, t, c, diversity mode, suppression budget), and
// the remaining request knobs that steer the run outside the policy —
// sensitive-attribute override, quasi-identifier restriction, and strict
// Mondrian. Workers is deliberately excluded (output-invariant), as are
// store / include_rows / timeout_ms (response shaping, not computation).
func cacheKey(p *preparedRun) (string, error) {
	pol, err := p.anon.Policy().Encode()
	if err != nil {
		return "", err
	}
	parts := []string{
		p.ds.table.Fingerprint(),
		p.ds.family,
		string(p.alg),
		string(pol),
		p.req.Sensitive,
		strings.Join(p.req.QuasiIdentifiers, ","),
		strconv.FormatBool(p.req.StrictMondrian),
	}
	return strings.Join(parts, cacheKeySep), nil
}

// cachedOutcome rebuilds the full anonymize response from a memoized run,
// publishing a fresh release into the registry when the request asked to
// store. The released bytes are identical to a fresh computation; only
// release_id (a new registry entry) and elapsed_ms (the original compute
// time) are request-dependent.
func (s *Server) cachedOutcome(p *preparedRun, hit *cachedRun, storeRelease bool) (*anonymizeOutcome, error) {
	rel := hit.release
	resp := anonymizeResponse{
		Dataset:      p.req.Dataset,
		Algorithm:    string(p.alg),
		Policy:       rel.Policy,
		PolicyRef:    p.policyRef,
		Node:         rel.Node,
		Measurements: measurementsJSONOf(rel.Measured),
		ElapsedMS:    float64(hit.elapsed.Microseconds()) / 1000,
	}
	switch {
	case rel.Table != nil:
		resp.Rows = rel.Table.Len()
		if p.req.IncludeRows {
			resp.Header = rel.Table.Schema().Names()
			resp.Data = rowsOf(rel.Table)
		}
	case rel.QIT != nil:
		resp.Rows = rel.QIT.Len()
	}
	if storeRelease {
		id, err := s.reg.putRelease(&storedRelease{
			dataset:   p.req.Dataset,
			origin:    p.ds,
			algorithm: p.alg,
			policyRef: p.policyRef,
			params:    p.req,
			release:   rel,
			elapsed:   hit.elapsed,
			created:   time.Now(),
		})
		if err != nil {
			return nil, err
		}
		resp.ReleaseID = id
	}
	return &anonymizeOutcome{resp: resp}, nil
}

// serveFromCache answers a prepared run from the result cache when possible.
// A hit bypasses the admission queue entirely: the outcome is recorded as an
// already-succeeded job (jobs.Manager.Complete), so both request paths keep
// their contract — the synchronous handler's Wait returns immediately, and
// the asynchronous client still gets a pollable job id. settled reports
// whether the request needs no submission: either snap is a valid succeeded
// job (ok) or the error envelope was already written (!ok).
func (s *Server) serveFromCache(w http.ResponseWriter, tenant string, p *preparedRun, storeRelease bool) (snap jobs.Snapshot, settled, ok bool) {
	if s.cache == nil || p.req.NoCache {
		return jobs.Snapshot{}, false, false
	}
	key, err := cacheKey(p)
	if err != nil {
		// An unencodable policy cannot happen for a validated run; fall
		// through to a fresh computation rather than failing the request.
		return jobs.Snapshot{}, false, false
	}
	v, hit := s.cache.Get(key)
	if !hit {
		return jobs.Snapshot{}, false, false
	}
	out, err := s.cachedOutcome(p, v.(*cachedRun), storeRelease)
	if err != nil {
		writeAnonymizeError(w, err)
		return jobs.Snapshot{}, true, false
	}
	snap, err = s.jobs.Complete(out, jobs.Options{Tenant: tenant, Meta: jobMeta{
		dataset:   p.req.Dataset,
		algorithm: string(p.alg),
		policy:    p.anon.Policy(),
		policyRef: p.policyRef,
	}})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		return jobs.Snapshot{}, true, false
	}
	return snap, true, true
}

// cacheStatsJSON is the /healthz view of the result cache; handleHealthz
// fills it from the same obsmetrics handles /metrics renders.
type cacheStatsJSON struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
}
