package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/ppdp/ppdp/internal/core"
	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/hierarchy"
	"github.com/ppdp/ppdp/internal/policy"
	"github.com/ppdp/ppdp/internal/store"
)

// Registry errors.
var (
	errDatasetExists     = errors.New("dataset already exists")
	errDatasetMissing    = errors.New("dataset not found")
	errReleaseMissing    = errors.New("release not found")
	errPolicyExists      = errors.New("policy already exists")
	errPolicyMissing     = errors.New("policy not found")
	errDatasetReferred   = errors.New("dataset is referenced by stored releases")
	errDatasetSpecPinned = errors.New("dataset is watched by release specs")
	errSpecExists        = errors.New("spec already exists")
	errSpecMissing       = errors.New("spec not found")
	errRegistryFull      = errors.New("registry is full")
	errTenantQuota       = errors.New("tenant dataset quota exceeded")
)

// Default registry occupancy caps (see Config.MaxDatasets/MaxReleases/
// MaxPolicies). Datasets and stored releases retain full tables, so without
// a bound a client looping generate/store requests would defeat the
// per-request size limits and exhaust the process. The caps are generous for
// interactive and batch use; delete entries (or restart) to reclaim space.
// Policies are tiny but capped anyway so the name space cannot grow without
// bound.
const (
	DefaultMaxDatasets = 128
	DefaultMaxReleases = 1024
	DefaultMaxPolicies = 256
)

// maxSpecs caps stored release specs. Specs are small records, but each one
// pins a release and schedules work on every dataset change, so the name
// space stays bounded like the other kinds.
const maxSpecs = 256

// storedDataset is one named table in the registry together with the
// hierarchy set used to anonymize and score it. The table is treated as
// immutable once stored: handlers only read it (reads build the shared
// columnar caches, which are internally synchronized).
type storedDataset struct {
	name   string
	family string
	// tenant records who stored the dataset ("" for unauthenticated uploads
	// and preloads); the per-tenant dataset quota counts entries by it.
	tenant  string
	table   *dataset.Table
	hier    *hierarchy.Set
	created time.Time
	// generation counts the dataset's content versions: 1 at creation,
	// incremented on every PUT replace and row append. The reconciler uses it
	// to decide whether a spec's release is stale.
	generation uint64
	// fp is the table's content fingerprint, captured when the dataset is
	// stored (it doubles as the snapshot address under -data-dir). The
	// reconciler's byte-identical short-circuit compares it across
	// generations.
	fp string
}

// storedRelease is one anonymization result kept for later report queries.
type storedRelease struct {
	id  string
	seq int
	// dataset is the registry name the release was built from; origin is
	// the dataset snapshot actually used. Reports read origin, so a
	// dataset replaced while the anonymization was in flight cannot make a
	// release compare itself against a table it was not built from.
	dataset   string
	origin    *storedDataset
	algorithm core.Algorithm
	// policyRef is the stored-policy name the request referenced, if any;
	// the enforced snapshot itself travels on release.Policy.
	policyRef string
	params    anonymizeRequest
	release   *core.Release
	elapsed   time.Duration
	created   time.Time
	// spec names the release spec that owns this release ("" for ad-hoc
	// releases). Spec-owned releases are re-published by the reconciler when
	// their dataset moves, so they do not block PUT replace or row appends
	// the way ad-hoc releases do — the reconciler is the one mutating them.
	spec string
}

// storedPolicy is one named privacy policy kept for reuse by policy_ref.
// The policy is stored in canonical form and treated as immutable: runs that
// reference it pin the pointer as their snapshot, so deleting or re-creating
// the name later never changes what an in-flight or finished run enforced.
type storedPolicy struct {
	name    string
	policy  *policy.Policy
	created time.Time
}

// registry is the concurrent in-memory store behind the service. A single
// RWMutex suffices because handlers hold it only for map operations; the
// expensive work (parsing, anonymizing, measuring) happens outside the lock,
// so concurrent anonymize requests over one dataset do not serialize.
type registry struct {
	mu       sync.RWMutex
	datasets map[string]*storedDataset
	releases map[string]*storedRelease
	policies map[string]*storedPolicy
	specs    map[string]*storedSpec
	nextID   int

	// Occupancy caps, resolved from the Config (or the defaults) at
	// construction.
	maxDatasets int
	maxReleases int
	maxPolicies int

	// st, when non-nil, is the durable store every mutation writes through
	// to: the op is journaled (append + fsync) under the write lock before
	// the map changes, so an acknowledged response is always recoverable and
	// replay order matches apply order. Table snapshots are persisted before
	// the journaling, outside the lock (see persist.go).
	st *store.Store
}

func newRegistry(maxDatasets, maxReleases, maxPolicies int) *registry {
	if maxDatasets <= 0 {
		maxDatasets = DefaultMaxDatasets
	}
	if maxReleases <= 0 {
		maxReleases = DefaultMaxReleases
	}
	if maxPolicies <= 0 {
		maxPolicies = DefaultMaxPolicies
	}
	return &registry{
		datasets:    make(map[string]*storedDataset),
		releases:    make(map[string]*storedRelease),
		policies:    make(map[string]*storedPolicy),
		specs:       make(map[string]*storedSpec),
		maxDatasets: maxDatasets,
		maxReleases: maxReleases,
		maxPolicies: maxPolicies,
	}
}

// counts reports registry occupancy for /healthz.
func (r *registry) counts() (datasets, releases, policies int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.datasets), len(r.releases), len(r.policies)
}

// putPolicy stores a policy under a free name (policies are immutable;
// replacing means delete + create).
func (r *registry) putPolicy(sp *storedPolicy) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.policies[sp.name]; ok {
		return fmt.Errorf("%w: %q", errPolicyExists, sp.name)
	}
	if len(r.policies) >= r.maxPolicies {
		return fmt.Errorf("%w: %d policies stored (limit %d)", errRegistryFull, len(r.policies), r.maxPolicies)
	}
	if r.st != nil {
		if err := r.persistPolicy(sp); err != nil {
			return err
		}
	}
	r.policies[sp.name] = sp
	return nil
}

// getPolicy looks a policy up by name.
func (r *registry) getPolicy(name string) (*storedPolicy, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	sp, ok := r.policies[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", errPolicyMissing, name)
	}
	return sp, nil
}

// listPolicies returns every stored policy in name order.
func (r *registry) listPolicies() []*storedPolicy {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*storedPolicy, 0, len(r.policies))
	for _, sp := range r.policies {
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// deletePolicy removes a stored policy. Runs and releases that referenced it
// keep their pinned snapshot, so no referential check is needed.
func (r *registry) deletePolicy(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.policies[name]; !ok {
		return fmt.Errorf("%w: %q", errPolicyMissing, name)
	}
	if r.st != nil {
		if err := r.persistDelete(store.KindPolicy, name); err != nil {
			return err
		}
	}
	delete(r.policies, name)
	return nil
}

// putDataset stores ds. When replace is false a name collision fails with
// errDatasetExists. Even with replace, a dataset that ad-hoc stored releases
// still reference is protected — swapping the table underneath them would
// silently corrupt their utility reports, the same breakage deleteDataset
// refuses. Releases owned by a release spec are exempt: the reconciler
// re-publishes them from the new content, which is exactly what replacing a
// watched dataset asks for (each spec-owned release pins its own origin
// snapshot, so reports stay correct mid-reconciliation). maxPerTenant, when
// positive, caps how many datasets ds.tenant may hold (replacing one's own
// dataset never consumes quota).
func (r *registry) putDataset(ds *storedDataset, replace bool, maxPerTenant int) error {
	// Persist the table snapshot before taking the lock: encoding is the
	// expensive part and PutTable is content-addressed and idempotent, so a
	// put whose op is then rejected below leaves at worst an unreferenced
	// snapshot for the next checkpoint's GC. The snapshot address doubles as
	// the content fingerprint; without a store it is computed directly (and
	// cached on the table).
	if r.st != nil {
		fp, err := r.st.PutTable(ds.table)
		if err != nil {
			return fmt.Errorf("%w: %v", errPersist, err)
		}
		ds.fp = fp
	} else if ds.table != nil { // registry unit tests store table-less stubs
		ds.fp = ds.table.Fingerprint()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	existing, exists := r.datasets[ds.name]
	ds.generation = 1
	if exists {
		if !replace {
			return fmt.Errorf("%w: %q", errDatasetExists, ds.name)
		}
		for _, rel := range r.releases {
			if rel.dataset == ds.name && rel.spec == "" {
				return fmt.Errorf("%w: %q (release %s)", errDatasetReferred, ds.name, rel.id)
			}
		}
		ds.generation = existing.generation + 1
	} else if len(r.datasets) >= r.maxDatasets {
		return fmt.Errorf("%w: %d datasets stored (limit %d)", errRegistryFull, len(r.datasets), r.maxDatasets)
	}
	if maxPerTenant > 0 {
		owned := r.tenantDatasetsLocked(ds.tenant)
		if exists && existing.tenant == ds.tenant {
			owned-- // replacing one of its own entries frees that slot
		}
		if owned >= maxPerTenant {
			return fmt.Errorf("%w: tenant %q holds %d datasets (limit %d)",
				errTenantQuota, ds.tenant, owned, maxPerTenant)
		}
	}
	if r.st != nil {
		if err := r.persistDataset(ds); err != nil {
			return err
		}
	}
	r.datasets[ds.name] = ds
	return nil
}

// tenantDatasetsLocked counts datasets owned by a tenant; the registry mutex
// must be held (read or write).
func (r *registry) tenantDatasetsLocked(tenant string) int {
	n := 0
	for _, ds := range r.datasets {
		if ds.tenant == tenant {
			n++
		}
	}
	return n
}

// canCreateDataset is a cheap advisory pre-check (name free, under caps) so
// handlers can refuse before doing expensive generation work. putDataset
// remains the authoritative check under the write lock.
func (r *registry) canCreateDataset(name, tenant string, maxPerTenant int) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if _, ok := r.datasets[name]; ok {
		return fmt.Errorf("%w: %q", errDatasetExists, name)
	}
	if len(r.datasets) >= r.maxDatasets {
		return fmt.Errorf("%w: %d datasets stored (limit %d)", errRegistryFull, len(r.datasets), r.maxDatasets)
	}
	if maxPerTenant > 0 {
		if owned := r.tenantDatasetsLocked(tenant); owned >= maxPerTenant {
			return fmt.Errorf("%w: tenant %q holds %d datasets (limit %d)",
				errTenantQuota, tenant, owned, maxPerTenant)
		}
	}
	return nil
}

// getDataset looks a dataset up by name.
func (r *registry) getDataset(name string) (*storedDataset, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ds, ok := r.datasets[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", errDatasetMissing, name)
	}
	return ds, nil
}

// listDatasets returns every stored dataset in name order.
func (r *registry) listDatasets() []*storedDataset {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*storedDataset, 0, len(r.datasets))
	for _, ds := range r.datasets {
		out = append(out, ds)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// deleteDataset removes a dataset. Datasets still referenced by a stored
// release are protected: deleting them would silently break the release's
// utility reports. Datasets watched by a release spec are protected too —
// the spec's whole purpose is to keep a release in sync with the dataset, so
// the spec must be deleted first (the error carries the machine-readable
// spec_pinned code; cascade-pausing specs instead was rejected as too easy to
// trip silently).
func (r *registry) deleteDataset(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.datasets[name]; !ok {
		return fmt.Errorf("%w: %q", errDatasetMissing, name)
	}
	for _, sp := range r.specs {
		if sp.dataset == name {
			return fmt.Errorf("%w: %q (spec %s)", errDatasetSpecPinned, name, sp.name)
		}
	}
	for _, rel := range r.releases {
		if rel.dataset == name {
			return fmt.Errorf("%w: %q (release %s)", errDatasetReferred, name, rel.id)
		}
	}
	if r.st != nil {
		if err := r.persistDelete(store.KindDataset, name); err != nil {
			return err
		}
	}
	delete(r.datasets, name)
	return nil
}

// putRelease stores a release and assigns it a process-unique id. With
// persistence enabled, the published tables become durable content-addressed
// snapshots first (outside the lock), then the release record is journaled
// under the freshly assigned id before the map changes — so a client that
// received a release id can always fetch that release after a crash.
func (r *registry) putRelease(rel *storedRelease) (string, error) {
	var originFP string
	var fps releaseTableFPs
	if r.st != nil {
		var err error
		if originFP, fps, err = r.persistReleaseTables(rel); err != nil {
			return "", err
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.releases) >= r.maxReleases {
		return "", fmt.Errorf("%w: %d releases stored (limit %d)", errRegistryFull, len(r.releases), r.maxReleases)
	}
	r.nextID++
	rel.seq = r.nextID
	rel.id = fmt.Sprintf("r%d", r.nextID)
	if r.st != nil {
		if err := r.persistRelease(rel, originFP, fps); err != nil {
			// The journal refused: the id was never acknowledged anywhere, so
			// it is safe to hand the same number to the next attempt.
			r.nextID--
			return "", err
		}
	}
	r.releases[rel.id] = rel
	return rel.id, nil
}

// errReleaseSpecOwned refuses deleting a release out from under the spec
// that continuously republishes it.
var errReleaseSpecOwned = errors.New("release is managed by a spec")

// deleteRelease removes a stored release, unpinning its dataset. Releases
// owned by a release spec are deleted through DELETE /v1/specs/{name}, which
// cascades; removing one directly would leave the spec pointing at nothing.
func (r *registry) deleteRelease(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	rel, ok := r.releases[id]
	if !ok {
		return fmt.Errorf("%w: %q", errReleaseMissing, id)
	}
	if rel.spec != "" {
		return fmt.Errorf("%w: %q (spec %s)", errReleaseSpecOwned, id, rel.spec)
	}
	if r.st != nil {
		if err := r.persistDelete(store.KindRelease, id); err != nil {
			return err
		}
	}
	delete(r.releases, id)
	return nil
}

// getRelease looks a release up by id.
func (r *registry) getRelease(id string) (*storedRelease, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rel, ok := r.releases[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", errReleaseMissing, id)
	}
	return rel, nil
}

// AddDataset registers a table (with the hierarchy set used to anonymize and
// score it) under a name before the server starts taking traffic — the
// programmatic equivalent of POST /v1/datasets, used by `ppdp serve -preload`
// and embedding callers. It fails when the name is already taken.
func (s *Server) AddDataset(name, family string, tbl *dataset.Table, hs *hierarchy.Set) error {
	if name == "" {
		return errors.New("server: dataset name is required")
	}
	if tbl == nil {
		return errors.New("server: dataset table is required")
	}
	tbl.SetScanWorkers(s.scanWorkers())
	return s.reg.putDataset(&storedDataset{
		name: name, family: family, table: tbl, hier: hs, created: time.Now(),
	}, false, 0)
}

// listReleases returns every stored release in creation order (ids are a
// counter, so the sequence number is a total order).
func (r *registry) listReleases() []*storedRelease {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*storedRelease, 0, len(r.releases))
	for _, rel := range r.releases {
		out = append(out, rel)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}
