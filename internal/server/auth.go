package server

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the tenant-aware admission layer: optional API-key
// authentication mapping each key to a tenant name, and a per-tenant
// token-bucket rate limiter. Both are middleware; both exempt /healthz and
// /metrics so load balancers and scrapers keep working when a tenant is
// throttled or a key rotates. When Config.APIKeys is empty the service runs
// unauthenticated exactly as before, with every request sharing the ""
// tenant.

// requestInfo travels down the middleware chain inside the request context.
// The instrument middleware (which runs outermost, before authentication)
// injects a mutable holder; authenticate fills in the tenant so the access
// log and any handler can read it.
type requestInfo struct {
	tenant string
}

type requestInfoKey struct{}

// withRequestInfo injects a fresh holder into the request context.
func withRequestInfo(r *http.Request) (*http.Request, *requestInfo) {
	info := &requestInfo{}
	return r.WithContext(context.WithValue(r.Context(), requestInfoKey{}, info)), info
}

// requestInfoOf returns the holder, or nil when the middleware chain did not
// inject one (direct handler tests).
func requestInfoOf(r *http.Request) *requestInfo {
	info, _ := r.Context().Value(requestInfoKey{}).(*requestInfo)
	return info
}

// tenantOf returns the authenticated tenant of a request ("" when
// unauthenticated or untenanted).
func tenantOf(r *http.Request) string {
	if info := requestInfoOf(r); info != nil {
		return info.tenant
	}
	return ""
}

// exemptFromAdmission reports whether a path bypasses authentication and rate
// limiting: liveness and metrics must stay reachable for infrastructure.
func exemptFromAdmission(path string) bool {
	return path == "/healthz" || path == "/metrics"
}

// authenticate resolves the request's tenant from its API key. With no keys
// configured it passes everything through (unauthenticated single-tenant
// mode). The key arrives as "Authorization: Bearer <key>" or in the X-API-Key
// header; an absent or unknown key is 401.
func (s *Server) authenticate(next http.Handler) http.Handler {
	if len(s.cfg.APIKeys) == 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exemptFromAdmission(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		key := r.Header.Get("X-API-Key")
		if key == "" {
			if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
				key = strings.TrimPrefix(auth, "Bearer ")
			}
		}
		if key == "" {
			writeError(w, http.StatusUnauthorized, "unauthorized",
				"missing API key: pass Authorization: Bearer <key> or X-API-Key")
			return
		}
		tenant, ok := s.cfg.APIKeys[key]
		if !ok {
			writeError(w, http.StatusUnauthorized, "unauthorized", "unknown API key")
			return
		}
		if info := requestInfoOf(r); info != nil {
			info.tenant = tenant
		}
		next.ServeHTTP(w, r)
	})
}

// tenantLimiter is a token-bucket rate limiter keyed by tenant. Buckets
// refill continuously at rate tokens/second up to burst; a request consumes
// one token. The clock is injectable so tests need no sleeps.
type tenantLimiter struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	now     func() time.Time
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

func newTenantLimiter(rate float64, burst int, now func() time.Time) *tenantLimiter {
	if burst < 1 {
		burst = int(math.Max(1, math.Ceil(rate)))
	}
	if now == nil {
		now = time.Now
	}
	return &tenantLimiter{
		rate:    rate,
		burst:   float64(burst),
		now:     now,
		buckets: make(map[string]*tokenBucket),
	}
}

// allow consumes one token from the tenant's bucket. When the bucket is
// empty it reports the wait until the next token accrues, for Retry-After.
func (l *tenantLimiter) allow(tenant string) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[tenant]
	if b == nil {
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// rateLimit throttles each tenant to Config.TenantRate requests/second with
// Config.TenantBurst headroom. Disabled (pass-through) when the rate is zero.
// It runs after authenticate in the chain, so the tenant is already resolved;
// in unauthenticated mode every request shares the "" bucket, making the
// limiter a global one.
func (s *Server) rateLimit(next http.Handler) http.Handler {
	if s.cfg.TenantRate <= 0 {
		return next
	}
	limiter := newTenantLimiter(s.cfg.TenantRate, s.cfg.TenantBurst, s.cfg.Now)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exemptFromAdmission(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		ok, wait := limiter.allow(tenantOf(r))
		if !ok {
			secs := int(math.Ceil(wait.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeError(w, http.StatusTooManyRequests, "rate_limited",
				"tenant rate limit exceeded (%.3g req/s); retry after %ds", s.cfg.TenantRate, secs)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// ParseAPIKeys reads a `serve -api-keys` file: one "<key> <tenant>" pair per
// line, whitespace-separated; blank lines and #-comments are skipped. Keys
// must be unique; several keys may map to one tenant (key rotation).
func ParseAPIKeys(r io.Reader) (map[string]string, error) {
	out := make(map[string]string)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("api-keys line %d: want \"<key> <tenant>\", got %d fields", lineNo, len(fields))
		}
		key, tenant := fields[0], fields[1]
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("api-keys line %d: duplicate key", lineNo)
		}
		out[key] = tenant
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("api-keys: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("api-keys: no key/tenant pairs found")
	}
	return out, nil
}
