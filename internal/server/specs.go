package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"github.com/ppdp/ppdp/internal/core"
	"github.com/ppdp/ppdp/internal/jobs"
	"github.com/ppdp/ppdp/internal/policy"
	"github.com/ppdp/ppdp/internal/republish"
	"github.com/ppdp/ppdp/internal/store"
)

// This file is the durable half of the release-reconciler subsystem: release
// specs. A spec declares desired state — "keep a release of dataset D under
// algorithm A and policy P" — and the reconcile.Manager (the runtime half,
// internal/reconcile) re-publishes the spec's release whenever the dataset
// moves to a new generation. The registry owns every durable transition: spec
// create/delete, the atomic release swap of a successful reconciliation, and
// the m-invariance release history that gives the "republish" algorithm its
// sequential mode.

// storedSpec is one release spec. Fields are guarded by the registry mutex;
// the reconciler serializes runs per spec, so at most one reconciliation
// mutates a spec at a time.
type storedSpec struct {
	name      string
	tenant    string
	dataset   string
	algorithm core.Algorithm
	// policyRef names the stored policy the spec referenced at creation; the
	// enforced document itself is pinned on policy (resolving at creation
	// means a later delete or re-create of the name never changes what the
	// spec republishes).
	policyRef string
	policy    *policy.Policy
	params    anonymizeRequest
	// releaseID is the spec's current release ("" until the first
	// reconciliation lands); reconGen/reconFP are the dataset generation and
	// content fingerprint that release reflects.
	releaseID string
	reconGen  uint64
	reconFP   string
	// history is the m-invariance release sequence (nil for other
	// algorithms): each reconciliation appends one release, and the whole
	// chain is revalidated against the fixed per-individual signatures
	// before a new release may land.
	history []*republish.Release
	// invariant records the latest cross-release m-invariance check.
	invariant       bool
	invariantDetail string
	created         time.Time
}

// mInvariance returns the spec's m-invariance criterion, if its policy
// declares one — the switch between the one-shot engine path and the
// sequential republish path.
func (sp *storedSpec) mInvariance() (policy.Criterion, bool) {
	if sp.policy == nil {
		return policy.Criterion{}, false
	}
	return sp.policy.Find(policy.MInvariance)
}

// ---- registry: spec CRUD ----

// putSpec stores a new spec (specs are immutable declarations; changing one
// means delete + create). The watched dataset must exist under the same lock
// that deleteDataset uses for its spec check, so a spec can never be created
// against a dataset that is concurrently deleted.
func (r *registry) putSpec(sp *storedSpec) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.specs[sp.name]; ok {
		return fmt.Errorf("%w: %q", errSpecExists, sp.name)
	}
	if len(r.specs) >= maxSpecs {
		return fmt.Errorf("%w: %d specs stored (limit %d)", errRegistryFull, len(r.specs), maxSpecs)
	}
	if _, ok := r.datasets[sp.dataset]; !ok {
		return fmt.Errorf("%w: %q", errDatasetMissing, sp.dataset)
	}
	if r.st != nil {
		if err := r.persistSpec(sp); err != nil {
			return err
		}
	}
	r.specs[sp.name] = sp
	return nil
}

// getSpec looks a spec up by name.
func (r *registry) getSpec(name string) (*storedSpec, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	sp, ok := r.specs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", errSpecMissing, name)
	}
	return sp, nil
}

// listSpecs returns every stored spec in name order.
func (r *registry) listSpecs() []*storedSpec {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*storedSpec, 0, len(r.specs))
	for _, sp := range r.specs {
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// deleteSpec removes a spec and cascades to the release it owns: the release
// exists to satisfy the spec, and spec-owned releases cannot be deleted
// directly, so orphaning it would pin the dataset forever.
func (r *registry) deleteSpec(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	sp, ok := r.specs[name]
	if !ok {
		return fmt.Errorf("%w: %q", errSpecMissing, name)
	}
	if r.st != nil {
		if err := r.persistDelete(store.KindSpec, name); err != nil {
			return err
		}
		if sp.releaseID != "" {
			if err := r.persistDelete(store.KindRelease, sp.releaseID); err != nil {
				return err
			}
		}
	}
	delete(r.specs, name)
	if sp.releaseID != "" {
		delete(r.releases, sp.releaseID)
	}
	return nil
}

// specRun is a consistent snapshot of everything one reconciliation needs,
// taken under the registry read lock so the expensive work (anonymizing,
// sequential publication) runs without holding it.
type specRun struct {
	name      string
	tenant    string
	dataset   string
	algorithm core.Algorithm
	policyRef string
	policy    *policy.Policy
	params    anonymizeRequest
	history   []*republish.Release
	ds        *storedDataset
}

// specRunSnapshot captures a spec and its dataset for one reconciliation.
func (r *registry) specRunSnapshot(name string) (*specRun, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	sp, ok := r.specs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", errSpecMissing, name)
	}
	ds, ok := r.datasets[sp.dataset]
	if !ok {
		return nil, fmt.Errorf("%w: %q", errDatasetMissing, sp.dataset)
	}
	hist := make([]*republish.Release, len(sp.history))
	copy(hist, sp.history)
	return &specRun{
		name:      sp.name,
		tenant:    sp.tenant,
		dataset:   sp.dataset,
		algorithm: sp.algorithm,
		policyRef: sp.policyRef,
		policy:    sp.policy,
		params:    sp.params,
		history:   hist,
		ds:        ds,
	}, nil
}

// swapSpecRelease atomically lands one successful reconciliation: the new
// release is journaled under a fresh id, the spec record is journaled
// pointing at it (with the advanced generation, fingerprint and — for
// m-invariance — the grown history), and the superseded release is journaled
// deleted, all under one hold of the registry write lock. Readers therefore
// observe either the old release id or the new one, never neither; and a
// crash between the journal appends recovers to a state the recovery loop
// reconciles (a release whose owning spec does not reference it is dropped).
func (r *registry) swapSpecRelease(name string, rel *storedRelease, hist *republish.Release, invariant bool, invariantDetail string, gen uint64, fp string) (string, error) {
	var originFP string
	var fps releaseTableFPs
	if r.st != nil {
		var err error
		if originFP, fps, err = r.persistReleaseTables(rel); err != nil {
			return "", err
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sp, ok := r.specs[name]
	if !ok {
		return "", fmt.Errorf("%w: %q (deleted mid-reconciliation)", errSpecMissing, name)
	}
	// The swap replaces the old release, so occupancy only grows for the
	// spec's first release.
	if sp.releaseID == "" && len(r.releases) >= r.maxReleases {
		return "", fmt.Errorf("%w: %d releases stored (limit %d)", errRegistryFull, len(r.releases), r.maxReleases)
	}
	r.nextID++
	rel.seq = r.nextID
	rel.id = fmt.Sprintf("r%d", r.nextID)
	rel.spec = name
	if r.st != nil {
		if err := r.persistRelease(rel, originFP, fps); err != nil {
			r.nextID--
			return "", err
		}
	}
	oldID := sp.releaseID
	sp.releaseID = rel.id
	if gen > sp.reconGen {
		sp.reconGen, sp.reconFP = gen, fp
	}
	if hist != nil {
		sp.history = append(sp.history, hist)
		sp.invariant, sp.invariantDetail = invariant, invariantDetail
	}
	if r.st != nil {
		if err := r.persistSpec(sp); err != nil {
			// Roll the spec back and un-journal the release so memory and
			// acknowledged history stay aligned; the manager retries.
			sp.releaseID = oldID
			if hist != nil {
				sp.history = sp.history[:len(sp.history)-1]
			}
			_ = r.persistDelete(store.KindRelease, rel.id)
			return "", err
		}
	}
	r.releases[rel.id] = rel
	if oldID != "" {
		if r.st != nil {
			// A failed delete journal leaves a superseded release record
			// behind; recovery drops releases their owning spec no longer
			// references, so this is not propagated as a swap failure.
			_ = r.persistDelete(store.KindRelease, oldID)
		}
		delete(r.releases, oldID)
	}
	return rel.id, nil
}

// markSpecSynced records a reconciliation that produced no new release (the
// fingerprint short-circuit): the dataset generation advanced but its bytes
// are identical to what the current release reflects. The bump is journaled
// so the short-circuit survives a restart.
func (r *registry) markSpecSynced(name string, gen uint64, fp string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	sp, ok := r.specs[name]
	if !ok {
		return fmt.Errorf("%w: %q", errSpecMissing, name)
	}
	if gen <= sp.reconGen {
		return nil
	}
	old, oldFP := sp.reconGen, sp.reconFP
	sp.reconGen, sp.reconFP = gen, fp
	if r.st != nil {
		if err := r.persistSpec(sp); err != nil {
			sp.reconGen, sp.reconFP = old, oldFP
			return err
		}
	}
	return nil
}

// ---- persistence ----

// specMeta is the journaled form of one release spec. The m-invariance
// history is stored as table fingerprints only: ST rows are emitted per
// bucket in signature order, so ReleaseFromTables reconstructs signatures and
// counterfeit counts exactly from the QIT/ST snapshots at recovery.
type specMeta struct {
	Tenant          string            `json:"tenant,omitempty"`
	Dataset         string            `json:"dataset"`
	Algorithm       string            `json:"algorithm"`
	PolicyRef       string            `json:"policy_ref,omitempty"`
	Policy          *policy.Policy    `json:"policy"`
	Params          anonymizeRequest  `json:"params"`
	ReleaseID       string            `json:"release_id,omitempty"`
	ReconGen        uint64            `json:"reconciled_generation"`
	ReconFP         string            `json:"reconciled_fp,omitempty"`
	History         []specHistoryMeta `json:"history,omitempty"`
	Invariant       bool              `json:"invariant,omitempty"`
	InvariantDetail string            `json:"invariant_detail,omitempty"`
	CreatedUnix     int64             `json:"created_unix_ns"`
}

// specHistoryMeta references one historical m-invariance release by its
// snapshot fingerprints.
type specHistoryMeta struct {
	Version int    `json:"version"`
	QITFP   string `json:"qit_fp"`
	STFP    string `json:"st_fp"`
}

// persistSpec journals a spec put under the registry write lock. History
// tables must already be durable — they always are, because every history
// entry was first journaled as that reconciliation's release (PutTable is
// content-addressed, so the spec record referencing the same fingerprints
// keeps the snapshots alive after the release record is superseded).
func (r *registry) persistSpec(sp *storedSpec) error {
	m := specMeta{
		Tenant:          sp.tenant,
		Dataset:         sp.dataset,
		Algorithm:       string(sp.algorithm),
		PolicyRef:       sp.policyRef,
		Policy:          sp.policy,
		Params:          sp.params,
		ReleaseID:       sp.releaseID,
		ReconGen:        sp.reconGen,
		ReconFP:         sp.reconFP,
		Invariant:       sp.invariant,
		InvariantDetail: sp.invariantDetail,
		CreatedUnix:     sp.created.UnixNano(),
	}
	var tables []string
	for _, rel := range sp.history {
		qitFP, err := r.st.PutTable(rel.QIT)
		if err != nil {
			return fmt.Errorf("%w: %v", errPersist, err)
		}
		stFP, err := r.st.PutTable(rel.ST)
		if err != nil {
			return fmt.Errorf("%w: %v", errPersist, err)
		}
		m.History = append(m.History, specHistoryMeta{Version: rel.Version, QITFP: qitFP, STFP: stFP})
		tables = append(tables, qitFP, stFP)
	}
	meta, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("%w: %v", errPersist, err)
	}
	err = r.st.Apply(store.Op{
		Op: store.OpPut, Kind: store.KindSpec, Key: sp.name,
		Tables: tables, Meta: meta,
	})
	if err != nil {
		return fmt.Errorf("%w: %v", errPersist, err)
	}
	return nil
}

// recoverSpecs rebuilds the spec map from the store. The m-invariance history
// loads as zero-copy mmap views and each release's signatures are
// reconstructed from its QIT/ST tables, so a recovered publisher resumes the
// sequence exactly where the crashed process left it.
func (s *Server) recoverSpecs(st *store.Store) error {
	reg := s.reg
	for _, rec := range st.Records(store.KindSpec) {
		var m specMeta
		if err := json.Unmarshal(rec.Meta, &m); err != nil {
			return fmt.Errorf("server: recover spec %q: undecodable metadata: %w", rec.Key, err)
		}
		if m.Policy == nil {
			return fmt.Errorf("server: recover spec %q: no pinned policy", rec.Key)
		}
		sp := &storedSpec{
			name:            rec.Key,
			tenant:          m.Tenant,
			dataset:         m.Dataset,
			algorithm:       core.Algorithm(m.Algorithm),
			policyRef:       m.PolicyRef,
			policy:          m.Policy,
			params:          m.Params,
			releaseID:       m.ReleaseID,
			reconGen:        m.ReconGen,
			reconFP:         m.ReconFP,
			invariant:       m.Invariant,
			invariantDetail: m.InvariantDetail,
			created:         time.Unix(0, m.CreatedUnix),
		}
		for _, h := range m.History {
			qit, err := st.Table(h.QITFP)
			if err != nil {
				return fmt.Errorf("server: recover spec %q: history v%d QIT: %w", rec.Key, h.Version, err)
			}
			stt, err := st.Table(h.STFP)
			if err != nil {
				return fmt.Errorf("server: recover spec %q: history v%d ST: %w", rec.Key, h.Version, err)
			}
			qit.SetScanWorkers(s.scanWorkers())
			stt.SetScanWorkers(s.scanWorkers())
			rel, err := republish.ReleaseFromTables(h.Version, qit, stt)
			if err != nil {
				return fmt.Errorf("server: recover spec %q: history v%d: %w", rec.Key, h.Version, err)
			}
			sp.history = append(sp.history, rel)
		}
		reg.specs[rec.Key] = sp
	}
	return nil
}

// trackRecoveredSpecs hands every recovered spec to the reconcile manager
// with its dataset's current generation. A spec whose dataset moved while
// the server was down (or whose last reconciliation never landed) starts
// catching up immediately.
func (s *Server) trackRecoveredSpecs() {
	for _, sp := range s.reg.listSpecs() {
		var gen uint64
		var fp string
		if ds, err := s.reg.getDataset(sp.dataset); err == nil {
			gen, fp = ds.generation, ds.fp
		}
		s.recon.Track(sp.name, sp.dataset, gen, fp, sp.reconGen, sp.reconFP)
	}
}

// ---- reconcile engine ----

// reconEngine implements reconcile.Engine on the server: Enqueue routes
// reconciliations through the shared job executor (one admission policy for
// interactive and reconciler work), Publish runs the spec's pipeline and
// swaps its release, and Noop journals fingerprint short-circuits.
type reconEngine struct{ s *Server }

func (e reconEngine) Enqueue(name string, run func(ctx context.Context)) error {
	sp, err := e.s.reg.getSpec(name)
	if err != nil {
		return err
	}
	timeout := e.s.cfg.RequestTimeout
	if sp.params.TimeoutMS > 0 {
		if d := time.Duration(sp.params.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	_, err = e.s.jobs.Submit(func(ctx context.Context, progress func(done, total int)) (any, error) {
		run(ctx)
		return nil, nil
	}, jobs.Options{
		Tenant: sp.tenant,
		Meta: jobMeta{
			spec:      name,
			dataset:   sp.dataset,
			algorithm: string(sp.algorithm),
			policyRef: sp.policyRef,
		},
		Timeout: timeout,
	})
	return err
}

func (e reconEngine) Publish(ctx context.Context, name string) (uint64, string, error) {
	return e.s.reconcilePublish(ctx, name)
}

func (e reconEngine) Noop(name string, gen uint64, fp string) error {
	return e.s.reg.markSpecSynced(name, gen, fp)
}

// reconcilePublish runs one reconciliation of a spec against its dataset's
// current state and atomically swaps the spec's release. It returns the
// dataset generation and fingerprint the new release reflects — read from
// the same snapshot the run consumed, so a dataset that advances while the
// job is queued simply leaves residual lag for the manager's finish re-check.
func (s *Server) reconcilePublish(ctx context.Context, name string) (uint64, string, error) {
	if s.runGate != nil {
		s.runGate(ctx)
	}
	run, err := s.reg.specRunSnapshot(name)
	if err != nil {
		return 0, "", err
	}
	gen, fp := run.ds.generation, run.ds.fp
	start := time.Now()
	var rel *core.Release
	var hist *republish.Release
	invariant, invariantDetail := false, ""
	if c, ok := run.policy.Find(policy.MInvariance); ok {
		hist, rel, invariant, invariantDetail, err = s.sequentialPublish(ctx, run, c)
	} else {
		rel, err = s.oneShotPublish(ctx, run)
	}
	elapsed := time.Since(start)
	if err != nil {
		return 0, "", err
	}
	stored := &storedRelease{
		dataset:   run.dataset,
		origin:    run.ds,
		algorithm: run.algorithm,
		policyRef: run.policyRef,
		params:    run.params,
		release:   rel,
		elapsed:   elapsed,
		created:   time.Now(),
	}
	if _, err := s.reg.swapSpecRelease(name, stored, hist, invariant, invariantDetail, gen, fp); err != nil {
		return 0, "", err
	}
	return gen, fp, nil
}

// oneShotPublish reconciles a stateless spec: the pinned policy rebuilds the
// core pipeline and the dataset's current table runs through it, exactly as
// a POST /v1/anonymize of the spec's declaration would.
func (s *Server) oneShotPublish(ctx context.Context, run *specRun) (*core.Release, error) {
	anon, err := core.New(core.Config{
		Algorithm:        run.algorithm,
		Policy:           run.policy,
		Sensitive:        run.params.Sensitive,
		QuasiIdentifiers: run.params.QuasiIdentifiers,
		Hierarchies:      run.ds.hier,
		StrictMondrian:   run.params.StrictMondrian,
		Workers:          s.cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	return anon.AnonymizeContext(ctx, run.ds.table)
}

// sequentialPublish reconciles an m-invariance spec: the publisher is
// restored from the spec's release history (revalidating every release
// against the fixed per-individual signatures — a tampered or non-invariant
// history refuses to extend), the dataset's current snapshot is published as
// the next release, and the whole chain is checked for m-invariance. The
// check's verdict lands on the release's measurements and the spec's status.
func (s *Server) sequentialPublish(ctx context.Context, run *specRun, c policy.Criterion) (*republish.Release, *core.Release, bool, string, error) {
	sensitive := c.Sensitive
	if sensitive == "" {
		sensitive = run.params.Sensitive
	}
	pub, err := republish.Restore(republish.Config{
		M:                c.M,
		ID:               c.ID,
		Sensitive:        sensitive,
		QuasiIdentifiers: run.params.QuasiIdentifiers,
	}, run.history)
	if err != nil {
		return nil, nil, false, "", err
	}
	hist, err := pub.PublishContext(ctx, run.ds.table)
	if err != nil {
		return nil, nil, false, "", err
	}
	ok, detail, err := republish.CheckInvariance(pub.Releases(), c.M)
	if err != nil {
		return nil, nil, false, "", err
	}
	// Measured is the weakest signature width across individuals of the new
	// release — the effective m the history sustains.
	minSig := 0
	for _, sig := range hist.Signatures {
		if minSig == 0 || len(sig) < minSig {
			minSig = len(sig)
		}
	}
	if sensitive == "" {
		if names := run.ds.table.Schema().SensitiveNames(); len(names) > 0 {
			sensitive = names[0]
		}
	}
	rel := &core.Release{
		QIT:       hist.QIT,
		ST:        hist.ST,
		Algorithm: run.algorithm,
		Policy:    run.policy,
		Measured: core.Measurements{
			DistinctL: minSig,
			Criteria: map[string]core.CriterionMeasurement{
				policy.MInvariance: {
					Satisfied: ok,
					Measured:  float64(minSig),
					Target:    float64(c.M),
					Sensitive: sensitive,
				},
			},
		},
	}
	return hist, rel, ok, detail, nil
}

// notifyDatasetChanged tells the reconcile manager a dataset moved. The
// caller passes the freshly stored entry after putDataset succeeded, so the
// generation and fingerprint are read without the registry lock — the manager
// takes its own lock and calls back into the registry from its goroutines,
// and notifying under the registry lock would order the two locks both ways.
func (s *Server) notifyDatasetChanged(ds *storedDataset) {
	if s.recon != nil {
		s.recon.Notify(ds.name, ds.generation, ds.fp)
	}
}

// ---- HTTP surface ----

// specRequest is the POST /v1/specs body: a name plus the same declaration
// POST /v1/anonymize takes (dataset, algorithm, policy | policy_ref | flat
// parameters, column overrides). Store/include_rows/no_cache are accepted for
// symmetry and ignored — a spec always stores its release and never inlines
// rows.
type specRequest struct {
	Name string `json:"name"`
	anonymizeRequest
}

// specInfo is the JSON view of a release spec: the declaration, the current
// release, and the reconciler's runtime status.
type specInfo struct {
	Name      string         `json:"name"`
	Dataset   string         `json:"dataset"`
	Algorithm string         `json:"algorithm"`
	Policy    *policy.Policy `json:"policy,omitempty"`
	PolicyRef string         `json:"policy_ref,omitempty"`
	ReleaseID string         `json:"release_id,omitempty"`
	// State is the reconciler's view: idle, running or backoff.
	State     string `json:"state"`
	Retries   int    `json:"retries,omitempty"`
	LastError string `json:"last_error,omitempty"`
	// DatasetGeneration / ReconciledGeneration expose the spec's lag.
	DatasetGeneration    uint64    `json:"dataset_generation"`
	ReconciledGeneration uint64    `json:"reconciled_generation"`
	Created              time.Time `json:"created"`
	// History and Invariant are present for m-invariance specs: the release
	// sequence so far and the latest cross-release signature check.
	History   []specHistoryJSON `json:"history,omitempty"`
	Invariant *invariantJSON    `json:"invariant,omitempty"`
}

// specHistoryJSON summarizes one historical m-invariance release.
type specHistoryJSON struct {
	Version      int `json:"version"`
	Rows         int `json:"rows"`
	Counterfeits int `json:"counterfeits"`
}

// invariantJSON is the latest cross-release m-invariance verdict.
type invariantJSON struct {
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

func (s *Server) specJSON(sp *storedSpec) specInfo {
	// The reconciler mutates the release pointer, history and invariance
	// verdict under the registry write lock (swapSpecRelease), so the render
	// snapshots them under the read lock. The declaration fields are
	// immutable after putSpec and need no protection.
	s.reg.mu.RLock()
	info := specInfo{
		Name:      sp.name,
		Dataset:   sp.dataset,
		Algorithm: string(sp.algorithm),
		Policy:    sp.policy,
		PolicyRef: sp.policyRef,
		ReleaseID: sp.releaseID,
		State:     "idle",
		Created:   sp.created,
	}
	if _, ok := sp.mInvariance(); ok {
		for _, rel := range sp.history {
			info.History = append(info.History, specHistoryJSON{
				Version:      rel.Version,
				Rows:         rel.QIT.Len(),
				Counterfeits: rel.Counterfeits,
			})
		}
		if len(sp.history) > 0 {
			info.Invariant = &invariantJSON{OK: sp.invariant, Detail: sp.invariantDetail}
		}
	}
	s.reg.mu.RUnlock()
	if st, ok := s.recon.Status(sp.name); ok {
		info.State = st.State
		info.Retries = st.Retries
		info.LastError = st.LastError
		info.DatasetGeneration = st.DatasetGeneration
		info.ReconciledGeneration = st.ReconciledGeneration
	}
	return info
}

// handleCreateSpec declares a release spec. The request validates exactly
// like an anonymize request (the policy is resolved and pinned here, so a
// later policy delete never changes what the spec republishes); on success
// the spec is journaled and handed to the reconciler, which publishes the
// first release asynchronously — poll GET /v1/specs/{name} for release_id.
func (s *Server) handleCreateSpec(w http.ResponseWriter, r *http.Request) {
	var req specRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "name is required")
		return
	}
	p := s.prepareAnonymize(w, req.anonymizeRequest)
	if p == nil {
		return
	}
	sp := &storedSpec{
		name:      req.Name,
		tenant:    tenantOf(r),
		dataset:   req.Dataset,
		algorithm: p.alg,
		policyRef: p.policyRef,
		policy:    p.anon.Policy(),
		params:    req.anonymizeRequest,
		created:   time.Now(),
	}
	if err := s.reg.putSpec(sp); err != nil {
		writeRegistryError(w, err)
		return
	}
	// Seed the control loop with the dataset's current generation; reconGen 0
	// means the first reconciliation starts immediately.
	s.recon.Track(sp.name, sp.dataset, p.ds.generation, p.ds.fp, 0, "")
	w.Header().Set("Location", "/v1/specs/"+sp.name)
	writeJSON(w, http.StatusCreated, s.specJSON(sp))
}

func (s *Server) handleListSpecs(w http.ResponseWriter, r *http.Request) {
	list := s.reg.listSpecs()
	out := make([]specInfo, len(list))
	for i, sp := range list {
		out[i] = s.specJSON(sp)
		// Listings stay summaries, like jobs: the policy document is served
		// by GET /v1/specs/{name}.
		out[i].Policy = nil
	}
	writeJSON(w, http.StatusOK, map[string]any{"specs": out})
}

func (s *Server) handleGetSpec(w http.ResponseWriter, r *http.Request) {
	sp, err := s.reg.getSpec(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.specJSON(sp))
}

// handleDeleteSpec removes a spec, cascading to the release it owns. The
// manager forgets the spec first so no new reconciliation starts; one already
// in flight finds the spec gone at swap time and its outcome is dropped.
func (s *Server) handleDeleteSpec(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.recon.Forget(name)
	if err := s.reg.deleteSpec(name); err != nil {
		switch {
		case errors.Is(err, errSpecMissing):
			writeError(w, http.StatusNotFound, "not_found", "%v", err)
		case errors.Is(err, errPersist):
			writeError(w, http.StatusInternalServerError, "storage", "%v", err)
		default:
			writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		}
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
