// Package server implements `ppdp serve`: a long-running HTTP anonymization
// service over the core release pipeline.
//
// The service keeps a concurrent in-memory registry of named datasets —
// uploaded as CSV or generated from the synthetic census/hospital families —
// and of the releases produced from them. Clients anonymize a dataset with
// any of the seven algorithms either synchronously through POST /v1/anonymize
// or as a background job through POST /v1/jobs, passing per-request privacy
// parameters (k, l, t, diversity mode, suppression budget), and read risk and
// utility reports for stored releases through GET endpoints.
//
// Execution model: both request paths share one executor — the jobs manager
// (internal/jobs), a bounded worker pool behind a FIFO admission queue. POST
// /v1/jobs submits and returns 202 with a job id; clients poll GET
// /v1/jobs/{id} for state, live progress (the engine's per-algorithm sinks)
// and queue position, cancel with DELETE, and fetch the published release
// once the job succeeds. The synchronous /v1/anonymize handler submits to the
// same queue and waits, so a single admission policy governs the whole
// service: when the queue is full both paths reject with 429 and a
// Retry-After header instead of accepting unbounded concurrent work.
//
// Concurrency model: the registry is guarded by a single RWMutex and handlers
// hold it only for lookups and stores, never while an algorithm runs.
// Config.JobWorkers bounds how many anonymization runs execute at once and
// Config.Workers bounds the internal worker pools of one run (Mondrian's
// partition recursion, Incognito's lattice layers, TopDown's candidate
// evaluation), so the machine is shared fairly at both levels. Every run's
// context — derived from the HTTP request on the synchronous path, from the
// job lifecycle on the asynchronous one — is polled by the algorithm at its
// natural unit of work, so cancellation and the Config.RequestTimeout
// deadline shed work promptly without publishing partial releases.
//
// Every error response is a JSON envelope {"error":{"code":...,
// "message":...}} with a machine-readable code; /healthz reports liveness,
// registry occupancy and executor load for load balancers.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"github.com/ppdp/ppdp/internal/core"
	"github.com/ppdp/ppdp/internal/engine"
	"github.com/ppdp/ppdp/internal/jobs"
	"github.com/ppdp/ppdp/internal/reconcile"
	"github.com/ppdp/ppdp/internal/resultcache"
	"github.com/ppdp/ppdp/internal/store"
)

// Config tunes a Server. The zero value is usable: it listens on :8080,
// bounds request bodies at 32 MiB, times anonymize requests out after 60
// seconds and sizes the Mondrian pool by GOMAXPROCS.
type Config struct {
	// Addr is the listen address for ListenAndServe (":8080" when empty).
	Addr string
	// Workers bounds the per-request internal parallelism: the algorithms'
	// worker pools (Mondrian's partition recursion, the lattice searches)
	// and the chunked table-scan kernels (GroupBy, content fingerprints,
	// snapshot encoding, report metrics) on stored and released tables;
	// zero uses GOMAXPROCS. A service handling many concurrent requests
	// should set this low (1 or 2) and let request-level parallelism fill
	// the CPUs.
	Workers int
	// RequestTimeout sets the deadline of one anonymize request (60s when
	// zero). Clients may ask for less via timeout_ms but never for more.
	// Every algorithm observes the deadline mid-run — each polls the context
	// at its natural unit of work (Mondrian per partition subtree, the
	// lattice searches per node, clustering per cluster, ...), so a timed-out
	// run stops within one unit of work of the deadline.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies, notably CSV uploads (32 MiB when
	// zero).
	MaxBodyBytes int64
	// JobWorkers bounds how many anonymization runs execute concurrently on
	// the shared executor behind /v1/anonymize and /v1/jobs (GOMAXPROCS when
	// zero). Together with QueueDepth it is the service's admission control.
	JobWorkers int
	// QueueDepth bounds the runs waiting for a free worker (64 when zero). A
	// full queue rejects both request paths with 429 and a Retry-After
	// header.
	QueueDepth int
	// JobTTL is how long finished jobs stay pollable on GET /v1/jobs/{id}
	// (15 minutes when zero). Published releases outlive their job.
	JobTTL time.Duration
	// CacheSize bounds the cross-request result cache: identical anonymize
	// requests (same dataset content, canonical policy, algorithm and
	// parameters) are answered from a memoized release without queueing work.
	// Zero uses DefaultCacheSize entries; negative disables caching. Requests
	// opt out individually with "no_cache".
	CacheSize int
	// APIKeys maps API keys to tenant names (`serve -api-keys`). When empty
	// the service runs unauthenticated and every request shares the ""
	// tenant; when set, requests must present a known key via Authorization:
	// Bearer or X-API-Key (except /healthz and /metrics, which stay open for
	// infrastructure).
	APIKeys map[string]string
	// TenantRate throttles each tenant to this many requests per second
	// (token bucket; zero disables rate limiting). In unauthenticated mode
	// the single "" tenant makes this a global limit.
	TenantRate float64
	// TenantBurst is the rate limiter's bucket size (defaults to
	// max(1, ceil(TenantRate)) when zero).
	TenantBurst int
	// TenantMaxDatasets caps how many datasets one tenant may store (zero
	// disables the quota).
	TenantMaxDatasets int
	// TenantMaxJobs caps one tenant's admitted jobs — queued plus running —
	// on the shared executor (zero disables the quota).
	TenantMaxJobs int
	// Now is the clock the rate limiter uses (time.Now when nil); tests
	// inject a deterministic one.
	Now func() time.Time
	// Log receives one line per request; nil disables request logging.
	Log *log.Logger
	// DataDir, when set, makes the registry durable: every mutation is
	// journaled to a write-ahead log under this directory before it is
	// acknowledged, table contents are stored as content-addressed columnar
	// snapshots served through zero-copy mmap views, and Open recovers the
	// full registry from the directory on boot. Empty keeps the registry
	// purely in memory (the historical behavior). Only Open honors it; New
	// ignores DataDir entirely.
	DataDir string
	// MaxDatasets, MaxReleases and MaxPolicies cap registry occupancy
	// (128/1024/256 when zero — see the Default* constants). `ppdp serve`
	// exposes them as -max-datasets/-max-releases/-max-policies.
	MaxDatasets int
	MaxReleases int
	MaxPolicies int
	// ReconcileBackoff and ReconcileBackoffMax tune the release reconciler's
	// retry schedule after a failed reconciliation (500ms doubling to 1m when
	// zero). Tests set them low for fast convergence.
	ReconcileBackoff    time.Duration
	ReconcileBackoffMax time.Duration
}

// Defaults for the zero Config.
const (
	DefaultAddr           = ":8080"
	DefaultRequestTimeout = 60 * time.Second
	DefaultMaxBodyBytes   = 32 << 20
	DefaultQueueDepth     = jobs.DefaultQueueDepth
	DefaultJobTTL         = jobs.DefaultTTL
	DefaultCacheSize      = 64
)

// Server is the ppdp anonymization service. Create one with New; it is ready
// to serve via Handler (for tests and embedding) or ListenAndServe. Close
// releases the executor when the server is used without Serve.
type Server struct {
	cfg     Config
	reg     *registry
	jobs    *jobs.Manager
	cache   *resultcache.Cache // nil when caching is disabled
	metrics *serverMetrics
	mux     *http.ServeMux
	started time.Time
	// recon keeps release specs continuously reconciled with their datasets.
	recon *reconcile.Manager
	// store is the durable registry state (nil without Config.DataDir).
	store *store.Store

	// runGate, when non-nil, is called at the start of every executor run
	// with the run's context. It exists for the tests, which use it to pin a
	// job in the running state deterministically (the internal/testctx
	// spirit: no sleeps, no wall-clock races); production servers never set
	// it.
	runGate func(ctx context.Context)
}

// New builds a Server with an empty registry and starts its executor pool.
func New(cfg Config) *Server {
	if cfg.Addr == "" {
		cfg.Addr = DefaultAddr
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.Workers < 0 {
		cfg.Workers = 0
	}
	s := &Server{cfg: cfg, reg: newRegistry(cfg.MaxDatasets, cfg.MaxReleases, cfg.MaxPolicies), started: time.Now()}
	if cfg.CacheSize >= 0 {
		size := cfg.CacheSize
		if size == 0 {
			size = DefaultCacheSize
		}
		s.cache = resultcache.New(size)
	}
	// The metrics inventory registers before the executor starts: its
	// occupancy gauges collect from s.jobs lazily at scrape time, and the
	// manager's Observer hook feeds the queue-wait histogram and lifecycle
	// counters.
	s.metrics = newServerMetrics(s)
	s.jobs = jobs.New(jobs.Config{
		Workers:      cfg.JobWorkers,
		QueueDepth:   cfg.QueueDepth,
		MaxPerTenant: cfg.TenantMaxJobs,
		TTL:          cfg.JobTTL,
		Observer:     s.metrics,
	})
	var reconLogf func(string, ...any)
	if cfg.Log != nil {
		reconLogf = cfg.Log.Printf
	}
	s.recon = reconcile.New(reconcile.Config{
		Engine:      reconEngine{s},
		BackoffBase: cfg.ReconcileBackoff,
		BackoffMax:  cfg.ReconcileBackoffMax,
		Logf:        reconLogf,
	})
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Open builds a Server like New and, when Config.DataDir is set, attaches
// the durable store: the directory's latest checkpoint manifest is loaded,
// the write-ahead log replayed over it (truncating a torn final record if
// the previous process died mid-append), and the full registry — datasets,
// releases, policies — recovered with every table served as a zero-copy mmap
// view of its columnar snapshot. Open refuses to start on damaged
// acknowledged history (a corrupt interior WAL record, a missing or
// unverifiable table snapshot) rather than serving partial state; point
// DataDir at a copied snapshot directory to restore from backup. With an
// empty DataDir, Open is exactly New.
func Open(cfg Config) (*Server, error) {
	s := New(cfg)
	if cfg.DataDir == "" {
		return s, nil
	}
	st, err := store.Open(cfg.DataDir, store.Options{
		OnFsync: func(d time.Duration) {
			if h := s.metrics.storeFsync; h != nil {
				h.Observe(d.Seconds())
			}
		},
	})
	if err != nil {
		s.Close()
		return nil, fmt.Errorf("server: open data dir %s: %w", cfg.DataDir, err)
	}
	if err := s.recover(st); err != nil {
		st.Close()
		s.Close()
		return nil, err
	}
	s.store = st
	s.reg.st = st
	s.metrics.registerStore(s)
	// Recovered specs re-enter the control loop: one whose dataset moved while
	// the server was down (or whose last reconciliation never landed) starts
	// catching up immediately.
	s.trackRecoveredSpecs()
	if cfg.Log != nil {
		stats := st.Stats()
		cfg.Log.Printf("ppdp serve: recovered %d datasets, %d releases, %d policies, %d specs from %s in %.3fs (wal records=%d torn=%v)",
			stats.Datasets, stats.Releases, stats.Policies, stats.Specs, cfg.DataDir,
			stats.RecoverySeconds, stats.RecoveredRecords, stats.RecoveredTorn)
	}
	return s, nil
}

// Close stops the shared executor — queued jobs are canceled, running jobs
// have their contexts canceled, and Close returns once the pool drains —
// then releases the durable store (WAL handle and table mappings) if one is
// attached. Serve calls it on shutdown; embedders that only use Handler call
// it themselves.
func (s *Server) Close() {
	// The reconciler stops first so no new reconciliations reach the executor;
	// its Close only waits for enqueue handoffs, not for the runs themselves,
	// which the executor's Close below drains.
	s.recon.Close()
	s.jobs.Close()
	if s.store != nil {
		s.store.Close()
	}
}

// scanWorkers resolves Config.Workers for the chunked table-scan kernels
// (content fingerprints, GroupBy-backed reports, snapshot encoding) with
// the same semantics core uses: zero means GOMAXPROCS. Stored dataset
// tables get the bound at creation and recovery; released tables inherit it
// from the run (see core.AnonymizeContext).
func (s *Server) scanWorkers() int {
	if s.cfg.Workers > 0 {
		return s.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// HasDataset reports whether a dataset is registered under name. `ppdp serve
// -preload` uses it to skip re-seeding a name already recovered from
// -data-dir.
func (s *Server) HasDataset(name string) bool {
	_, err := s.reg.getDataset(name)
	return err == nil
}

// RouteDoc documents one registered endpoint: its method-qualified pattern
// and a one-line summary. The table below is the single source for both the
// mux registrations and the generated docs/API.md route reference (see
// cmd/apidocs), so the documentation cannot list a route the server does not
// serve or miss one it does.
type RouteDoc struct {
	Pattern string
	Summary string
}

// routeTable wires pattern + summary + handler together. Handlers are method
// expressions so the table can live at package level.
var routeTable = []struct {
	RouteDoc
	handler func(*Server, http.ResponseWriter, *http.Request)
}{
	{RouteDoc{"GET /healthz", "liveness, registry occupancy and executor load"}, (*Server).handleHealthz},
	{RouteDoc{"GET /metrics", "Prometheus text exposition: request/run latency histograms, queue depth and wait, job lifecycle counters, registry and cache occupancy"}, (*Server).handleMetrics},
	{RouteDoc{"GET /v1/algorithms", "capability cards of every registered algorithm, including supported policy criteria"}, (*Server).handleAlgorithms},
	{RouteDoc{"POST /v1/datasets", "generate a synthetic census/hospital dataset under a registry name"}, (*Server).handleGenerateDataset},
	{RouteDoc{"PUT /v1/datasets/{name}", "upload a CSV dataset (create-or-replace; ?family= selects the schema; replacing a spec-watched dataset triggers reconciliation)"}, (*Server).handleUploadDataset},
	{RouteDoc{"POST /v1/datasets/{name}/rows", "append CSV rows to a stored dataset (schema must match; bumps the dataset generation and triggers spec reconciliation)"}, (*Server).handleAppendRows},
	{RouteDoc{"GET /v1/datasets", "list stored datasets"}, (*Server).handleListDatasets},
	{RouteDoc{"GET /v1/datasets/{name}", "dataset metadata; a row page with ?limit/?offset; streamed CSV under Accept: text/csv"}, (*Server).handleGetDataset},
	{RouteDoc{"DELETE /v1/datasets/{name}", "delete a dataset (409 while ad-hoc releases reference it or release specs watch it — delete those first)"}, (*Server).handleDeleteDataset},
	{RouteDoc{"POST /v1/policies", "store a named privacy policy (canonicalized, immutable)"}, (*Server).handleCreatePolicy},
	{RouteDoc{"GET /v1/policies", "list stored policies"}, (*Server).handleListPolicies},
	{RouteDoc{"GET /v1/policies/{name}", "fetch one stored policy in canonical form"}, (*Server).handleGetPolicy},
	{RouteDoc{"DELETE /v1/policies/{name}", "delete a stored policy (runs keep their pinned snapshots)"}, (*Server).handleDeletePolicy},
	{RouteDoc{"POST /v1/snapshot", "checkpoint the durable store: fold the WAL into a fresh manifest generation so the data directory is a consistent copyable backup (requires -data-dir)"}, (*Server).handleSnapshot},
	{RouteDoc{"POST /v1/anonymize", "anonymize synchronously; criteria via policy, policy_ref or deprecated flat params"}, (*Server).handleAnonymize},
	{RouteDoc{"POST /v1/jobs", "submit a background anonymization (202 + Location; same request body as /v1/anonymize)"}, (*Server).handleSubmitJob},
	{RouteDoc{"GET /v1/jobs", "list jobs (summaries: no result payloads or policy documents)"}, (*Server).handleListJobs},
	{RouteDoc{"GET /v1/jobs/{id}", "job detail: state, live progress, queue position, policy, result"}, (*Server).handleGetJob},
	{RouteDoc{"DELETE /v1/jobs/{id}", "cancel a queued or running job (409 when already finished)"}, (*Server).handleCancelJob},
	{RouteDoc{"POST /v1/specs", "declare a release spec: the reconciler keeps a release of the dataset continuously published under the pinned policy (same body as /v1/anonymize plus a name)"}, (*Server).handleCreateSpec},
	{RouteDoc{"GET /v1/specs", "list release specs (summaries: no policy documents)"}, (*Server).handleListSpecs},
	{RouteDoc{"GET /v1/specs/{name}", "spec detail: declaration, current release id, reconciler state (idle/running/backoff), generation lag, m-invariance history"}, (*Server).handleGetSpec},
	{RouteDoc{"DELETE /v1/specs/{name}", "delete a spec and the release it owns"}, (*Server).handleDeleteSpec},
	{RouteDoc{"GET /v1/releases", "list stored releases"}, (*Server).handleListReleases},
	{RouteDoc{"GET /v1/releases/{id}", "release metadata: algorithm, canonical policy, per-criterion measurements"}, (*Server).handleGetRelease},
	{RouteDoc{"DELETE /v1/releases/{id}", "delete a stored release, unpinning its dataset (409 spec_pinned for spec-owned releases — delete the spec instead)"}, (*Server).handleDeleteRelease},
	{RouteDoc{"GET /v1/releases/{id}/data", "streamed CSV rows (default); a JSON row page with ?limit/?offset under Accept: application/json; ?table=qit|st for anatomy"}, (*Server).handleReleaseData},
	{RouteDoc{"GET /v1/releases/{id}/risk", "re-identification and attribute-disclosure risk report (?threshold=)"}, (*Server).handleReleaseRisk},
	{RouteDoc{"GET /v1/releases/{id}/utility", "utility report against the pinned dataset snapshot (?k=)"}, (*Server).handleReleaseUtility},
}

// RouteDocs returns every registered endpoint's pattern and summary in
// registration order — the route reference cmd/apidocs renders.
func RouteDocs() []RouteDoc {
	out := make([]RouteDoc, len(routeTable))
	for i, rt := range routeTable {
		out[i] = rt.RouteDoc
	}
	return out
}

// routes wires every endpoint from the route table. Method-qualified
// patterns (Go 1.22 ServeMux) give free 405s for wrong methods.
func (s *Server) routes() {
	for _, rt := range routeTable {
		handler := rt.handler
		s.mux.HandleFunc(rt.Pattern, func(w http.ResponseWriter, r *http.Request) {
			handler(s, w, r)
		})
	}
}

// Handler returns the service's HTTP handler with the full middleware chain
// applied, outermost first: instrument (metrics + access log), authenticate
// (API keys → tenant), rateLimit (per-tenant token bucket) and limitBody.
// Tests mount it on httptest.Server; ListenAndServe uses it too.
func (s *Server) Handler() http.Handler {
	var h http.Handler = s.mux
	h = s.limitBody(h)
	h = s.rateLimit(h)
	h = s.authenticate(h)
	h = s.instrument(h)
	return h
}

// ListenAndServe runs the service until ctx is canceled, then drains with a
// graceful shutdown. It returns nil after a clean shutdown.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Shutdown pacing: quick requests get shutdownGrace to drain normally; then
// in-flight request contexts are canceled so long anonymize runs shed through
// their cancellation path, well inside the shutdownBudget Shutdown waits.
const (
	shutdownGrace  = 5 * time.Second
	shutdownBudget = 15 * time.Second
)

// Serve runs the service on an existing listener until ctx is canceled.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	// The executor outlives every request but not the server: once HTTP
	// shutdown completes (or serving fails), cancel whatever still runs.
	defer s.Close()
	// Request contexts derive from baseCtx, not from ctx directly: shutdown
	// must first let in-flight work drain, and only cancel it after the
	// grace period — deriving from ctx would kill every request the moment
	// the signal arrives.
	baseCtx, cancelRequests := context.WithCancel(context.Background())
	defer cancelRequests()
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	if s.cfg.Log != nil {
		s.cfg.Log.Printf("ppdp serve: listening on %s", ln.Addr())
	}
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		grace := time.AfterFunc(shutdownGrace, cancelRequests)
		defer grace.Stop()
		shutCtx, cancel := context.WithTimeout(context.Background(), shutdownBudget)
		defer cancel()
		return hs.Shutdown(shutCtx)
	}
}

// limitBody caps every request body at Config.MaxBodyBytes.
func (s *Server) limitBody(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		next.ServeHTTP(w, r)
	})
}

// statusRecorder captures the response status code and body size for the
// access log and the HTTP metrics. The zero status means the handler never
// called WriteHeader, which net/http commits as an implicit 200 on the first
// Write.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// instrument is the outermost middleware: it injects the requestInfo holder
// (filled in by authenticate further down the chain), records the HTTP
// metrics — request count and latency by route pattern and status, in-flight
// gauge — and emits the access log line from the same measurements, so the
// log and the metrics can never disagree about a request. The route label is
// the mux's registered pattern, not the raw path, keeping the label
// cardinality bounded by the route table.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		r, info := withRequestInfo(r)
		s.metrics.httpInFlight.Inc()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		s.metrics.httpInFlight.Dec()
		status := rec.status
		if status == 0 {
			// Handler wrote nothing at all; net/http sends an implicit 200.
			status = http.StatusOK
		}
		elapsed := time.Since(start)
		route := s.routePattern(r)
		s.metrics.httpRequests.With(route, strconv.Itoa(status)).Inc()
		s.metrics.httpLatency.With(route).Observe(elapsed.Seconds())
		if s.cfg.Log != nil {
			tenant := info.tenant
			if tenant == "" {
				tenant = "-"
			}
			s.cfg.Log.Printf("%s %s %d %s %dB tenant=%s",
				r.Method, r.URL.Path, status, elapsed.Round(time.Microsecond), rec.bytes, tenant)
		}
	})
}

// routePattern returns the mux pattern that serves a request ("unmatched"
// for 404s), the bounded-cardinality route label of the HTTP metrics.
func (s *Server) routePattern(r *http.Request) string {
	_, pattern := s.mux.Handler(r)
	if pattern == "" {
		return "unmatched"
	}
	return pattern
}

// healthResponse is the /healthz body. Cache reports the result cache's
// hit/miss/eviction counters and occupancy (absent when caching is disabled);
// Storage reports the durable store's health (absent without -data-dir).
type healthResponse struct {
	Status      string              `json:"status"`
	Datasets    int                 `json:"datasets"`
	Releases    int                 `json:"releases"`
	Policies    int                 `json:"policies"`
	JobsQueued  int                 `json:"jobs_queued"`
	JobsRunning int                 `json:"jobs_running"`
	Reconcile   *reconcileStatsJSON `json:"reconcile,omitempty"`
	Cache       *cacheStatsJSON     `json:"cache,omitempty"`
	Storage     *storageStatsJSON   `json:"storage,omitempty"`
	UptimeSec   int64               `json:"uptime_seconds"`
	Go          string              `json:"go"`
}

// reconcileStatsJSON is the /healthz reconciler block: tracked specs, run
// outcomes and the summed generation lag.
type reconcileStatsJSON struct {
	Specs   int   `json:"specs"`
	Success int64 `json:"success"`
	Noop    int64 `json:"noop"`
	Errors  int64 `json:"errors"`
	Retries int64 `json:"retries"`
	Lag     int64 `json:"generation_lag"`
}

// storageStatsJSON is the /healthz storage block: WAL growth since the last
// checkpoint, snapshot age, what the last boot recovered, and how much table
// data is mmap-resident versus on disk.
type storageStatsJSON struct {
	Dir              string  `json:"dir"`
	Generation       int64   `json:"generation"`
	WALBytes         int64   `json:"wal_bytes"`
	WALRecords       int64   `json:"wal_records"`
	WALFsyncs        int64   `json:"wal_fsyncs"`
	SnapshotAgeSec   float64 `json:"snapshot_age_seconds"`
	CheckpointErrors int64   `json:"checkpoint_errors"`
	RecoverySec      float64 `json:"recovery_seconds"`
	RecoveredRecords int     `json:"recovered_records"`
	RecoveredTorn    bool    `json:"recovered_torn"`
	MappedTables     int     `json:"mapped_tables"`
	MappedBytes      int64   `json:"mapped_bytes"`
	TableFiles       int     `json:"table_files"`
	TableBytes       int64   `json:"table_bytes"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Every number below is read through the same obsmetrics handles GET
	// /metrics renders (the function-backed gauges and counters collect from
	// the registry, the executor and the cache at call time), so /healthz and
	// a scrape can never report different values for the same quantity.
	m := s.metrics
	resp := healthResponse{
		Status:      "ok",
		Datasets:    int(m.regDatasets.Value()),
		Releases:    int(m.regReleases.Value()),
		Policies:    int(m.regPolicies.Value()),
		JobsQueued:  int(m.jobsQueued.Value()),
		JobsRunning: int(m.jobsRunning.Value()),
		Reconcile: &reconcileStatsJSON{
			Specs:   int(m.reconSpecs.Value()),
			Success: int64(m.reconSuccess.Value()),
			Noop:    int64(m.reconNoop.Value()),
			Errors:  int64(m.reconErrors.Value()),
			Retries: int64(m.reconRetries.Value()),
			Lag:     int64(m.reconLag.Value()),
		},
		UptimeSec: int64(m.uptime.Value()),
		Go:        runtime.Version(),
	}
	if m.cacheHits != nil {
		resp.Cache = &cacheStatsJSON{
			Hits:      int64(m.cacheHits.Value()),
			Misses:    int64(m.cacheMisses.Value()),
			Evictions: int64(m.cacheEvictions.Value()),
			Entries:   int(m.cacheEntries.Value()),
			Capacity:  int(m.cacheCapacity.Value()),
		}
	}
	if m.storeWALBytes != nil {
		resp.Storage = s.storageJSON()
	}
	writeJSON(w, http.StatusOK, resp)
}

// storageJSON renders the storage block through the same metric handles the
// /metrics exposition scrapes, preserving the healthz/metrics consistency
// contract for the ppdp_store_* families.
func (s *Server) storageJSON() *storageStatsJSON {
	m := s.metrics
	return &storageStatsJSON{
		Dir:              s.cfg.DataDir,
		Generation:       int64(m.storeGeneration.Value()),
		WALBytes:         int64(m.storeWALBytes.Value()),
		WALRecords:       int64(m.storeWALRecords.Value()),
		WALFsyncs:        int64(m.storeWALFsyncs.Value()),
		SnapshotAgeSec:   m.storeSnapshotAge.Value(),
		CheckpointErrors: int64(m.storeCheckpointErrs.Value()),
		RecoverySec:      m.storeRecovery.Value(),
		RecoveredRecords: int(m.storeRecoveredRecords.Value()),
		RecoveredTorn:    m.storeRecoveredTorn.Value() > 0,
		MappedTables:     int(m.storeMappedTables.Value()),
		MappedBytes:      int64(m.storeMappedBytes.Value()),
		TableFiles:       int(m.storeTableFiles.Value()),
		TableBytes:       int64(m.storeTableBytes.Value()),
	}
}

// handleSnapshot folds the WAL into a fresh checkpoint generation on demand.
// After a 200, the data directory is a consistent point-in-time image — copy
// it and point a new server's -data-dir at the copy to restore. Without
// -data-dir there is nothing to snapshot, which is the client's mistake to
// learn about, not a server fault.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusUnprocessableEntity, "no_storage",
			"persistence is disabled: start the server with -data-dir to enable snapshots")
		return
	}
	if err := s.store.Checkpoint(); err != nil {
		writeError(w, http.StatusInternalServerError, "storage", "checkpoint: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"storage": s.storageJSON()})
}

// errorEnvelope is the uniform JSON error body.
type errorEnvelope struct {
	Error apiError `json:"error"`
}

// apiError carries a machine-readable code alongside the human message.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeJSON renders v with the proper content type. Encoding errors at this
// point can only be I/O failures on a committed response, so they are
// ignored.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError renders the JSON error envelope.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorEnvelope{Error: apiError{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// StatusClientClosedRequest mirrors nginx's non-standard 499: the client went
// away before the anonymization finished.
const StatusClientClosedRequest = 499

// classifyAnonymizeError maps a pipeline error onto an HTTP status and
// envelope code: configuration problems are the client's fault (400), privacy
// parameters no algorithm run can meet are 422, timeouts are 504, abandoned
// or canceled runs are 499, a full release registry at publish time is 507, a
// durable-store failure while publishing is a 500 with the "storage" code,
// anything else is a 500. Algorithm failures arrive pre-classified by their
// engine adapters (engine.ErrConfig / engine.ErrUnsatisfiable), so the
// mapping needs no per-algorithm knowledge. Both the synchronous response
// path and the job-state rendering use this one table.
func classifyAnonymizeError(err error) (status int, code string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "timeout"
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest, "canceled"
	case errors.Is(err, core.ErrConfig), errors.Is(err, engine.ErrConfig):
		return http.StatusBadRequest, "bad_config"
	case errors.Is(err, engine.ErrUnsatisfiable):
		return http.StatusUnprocessableEntity, "unsatisfiable"
	case errors.Is(err, errRegistryFull):
		return http.StatusInsufficientStorage, "registry_full"
	case errors.Is(err, errPersist):
		return http.StatusInternalServerError, "storage"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// writeAnonymizeError renders a pipeline error as its envelope.
func writeAnonymizeError(w http.ResponseWriter, err error) {
	status, code := classifyAnonymizeError(err)
	writeError(w, status, code, "%v", err)
}
