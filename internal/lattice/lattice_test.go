package lattice

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func newTestLattice(t *testing.T) *Lattice {
	t.Helper()
	l, err := New([]string{"age", "zip", "sex"}, []int{2, 3, 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return l
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("empty lattice accepted")
	}
	if _, err := New([]string{"a"}, []int{1, 2}); err == nil {
		t.Error("mismatched arity accepted")
	}
	if _, err := New([]string{"a"}, []int{-1}); err == nil {
		t.Error("negative max level accepted")
	}
}

func TestBasics(t *testing.T) {
	l := newTestLattice(t)
	if l.Dimensions() != 3 {
		t.Errorf("Dimensions = %d", l.Dimensions())
	}
	if !reflect.DeepEqual(l.Attributes(), []string{"age", "zip", "sex"}) {
		t.Errorf("Attributes = %v", l.Attributes())
	}
	if !reflect.DeepEqual(l.MaxLevels(), []int{2, 3, 1}) {
		t.Errorf("MaxLevels = %v", l.MaxLevels())
	}
	if !l.Bottom().Equal(Node{0, 0, 0}) {
		t.Errorf("Bottom = %v", l.Bottom())
	}
	if !l.Top().Equal(Node{2, 3, 1}) {
		t.Errorf("Top = %v", l.Top())
	}
	if l.MaxHeight() != 6 {
		t.Errorf("MaxHeight = %d", l.MaxHeight())
	}
	if l.Size() != 3*4*2 {
		t.Errorf("Size = %d", l.Size())
	}
	if !l.Contains(Node{1, 1, 1}) || l.Contains(Node{3, 0, 0}) || l.Contains(Node{0, 0}) {
		t.Error("Contains wrong")
	}
}

func TestNodeHelpers(t *testing.T) {
	n := Node{1, 2, 0}
	if n.Height() != 3 {
		t.Errorf("Height = %d", n.Height())
	}
	if n.Key() != "1,2,0" {
		t.Errorf("Key = %q", n.Key())
	}
	back, err := ParseNode("1,2,0")
	if err != nil || !back.Equal(n) {
		t.Errorf("ParseNode = %v, %v", back, err)
	}
	if _, err := ParseNode(""); err == nil {
		t.Error("ParseNode empty accepted")
	}
	if _, err := ParseNode("a,b"); err == nil {
		t.Error("ParseNode garbage accepted")
	}
	c := n.Clone()
	c[0] = 9
	if n[0] != 1 {
		t.Error("Clone aliases storage")
	}
	if !Node([]int{2, 2, 1}).Dominates(n) || n.Dominates(Node{2, 2, 1}) {
		t.Error("Dominates wrong")
	}
	if n.Dominates(Node{1, 2}) {
		t.Error("Dominates should be false for arity mismatch")
	}
	if n.Equal(Node{1, 2}) {
		t.Error("Equal should be false for arity mismatch")
	}
}

func TestSuccessorsPredecessors(t *testing.T) {
	l := newTestLattice(t)
	succ, err := l.Successors(Node{2, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(succ) != 1 || !succ[0].Equal(Node{2, 3, 1}) {
		t.Errorf("Successors = %v", succ)
	}
	succ, _ = l.Successors(l.Top())
	if len(succ) != 0 {
		t.Errorf("Top successors = %v", succ)
	}
	pred, err := l.Predecessors(Node{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != 2 {
		t.Errorf("Predecessors = %v", pred)
	}
	pred, _ = l.Predecessors(l.Bottom())
	if len(pred) != 0 {
		t.Errorf("Bottom predecessors = %v", pred)
	}
	if _, err := l.Successors(Node{0}); !errors.Is(err, ErrShape) {
		t.Errorf("bad arity error = %v", err)
	}
	if _, err := l.Predecessors(Node{0}); !errors.Is(err, ErrShape) {
		t.Errorf("bad arity error = %v", err)
	}
}

func TestNodesAtHeight(t *testing.T) {
	l := newTestLattice(t)
	h0 := l.NodesAtHeight(0)
	if len(h0) != 1 || !h0[0].Equal(l.Bottom()) {
		t.Errorf("height 0 = %v", h0)
	}
	h1 := l.NodesAtHeight(1)
	if len(h1) != 3 {
		t.Errorf("height 1 = %v", h1)
	}
	for _, n := range h1 {
		if n.Height() != 1 {
			t.Errorf("node %v has height %d", n, n.Height())
		}
	}
	top := l.NodesAtHeight(l.MaxHeight())
	if len(top) != 1 || !top[0].Equal(l.Top()) {
		t.Errorf("top layer = %v", top)
	}
	if got := l.NodesAtHeight(-1); got != nil {
		t.Errorf("negative height = %v", got)
	}
	if got := l.NodesAtHeight(99); got != nil {
		t.Errorf("over height = %v", got)
	}
}

func TestAllNodesCountAndOrder(t *testing.T) {
	l := newTestLattice(t)
	all := l.AllNodes()
	if len(all) != l.Size() {
		t.Fatalf("AllNodes len = %d, want %d", len(all), l.Size())
	}
	seen := make(map[string]bool)
	prevHeight := 0
	for _, n := range all {
		if seen[n.Key()] {
			t.Fatalf("duplicate node %v", n)
		}
		seen[n.Key()] = true
		if n.Height() < prevHeight {
			t.Fatalf("nodes not ordered by height")
		}
		prevHeight = n.Height()
		if !l.Contains(n) {
			t.Fatalf("AllNodes produced invalid node %v", n)
		}
	}
}

func TestGeneralizationsOf(t *testing.T) {
	l := newTestLattice(t)
	g, err := l.GeneralizationsOf(Node{2, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 2 {
		t.Errorf("GeneralizationsOf = %v", g)
	}
	if _, err := l.GeneralizationsOf(Node{1}); !errors.Is(err, ErrShape) {
		t.Errorf("bad arity error = %v", err)
	}
	all, _ := l.GeneralizationsOf(l.Bottom())
	if len(all) != l.Size() {
		t.Errorf("generalizations of bottom = %d, want %d", len(all), l.Size())
	}
}

func TestSortNodes(t *testing.T) {
	nodes := []Node{{1, 1, 0}, {0, 0, 0}, {0, 2, 0}, {0, 0, 1}}
	SortNodes(nodes)
	if !nodes[0].Equal(Node{0, 0, 0}) {
		t.Errorf("first node = %v", nodes[0])
	}
	if !nodes[1].Equal(Node{0, 0, 1}) {
		t.Errorf("second node = %v (want lexicographic within height)", nodes[1])
	}
	if nodes[3].Height() != 2 {
		t.Errorf("last node = %v", nodes[3])
	}
}

func TestProject(t *testing.T) {
	l := newTestLattice(t)
	sub, n, err := l.Project(Node{2, 3, 1}, []string{"sex", "age"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sub.Attributes(), []string{"sex", "age"}) {
		t.Errorf("projected attrs = %v", sub.Attributes())
	}
	if !n.Equal(Node{1, 2}) {
		t.Errorf("projected node = %v", n)
	}
	if _, _, err := l.Project(Node{0, 0, 0}, []string{"nope"}); err == nil {
		t.Error("Project with unknown attribute succeeded")
	}
	if _, _, err := l.Project(Node{0}, []string{"age"}); !errors.Is(err, ErrShape) {
		t.Errorf("bad arity error = %v", err)
	}
}

// Property: successors always increase height by exactly one and remain in
// the lattice; predecessors decrease it by one.
func TestSuccessorHeightProperty(t *testing.T) {
	l := newTestLattice(t)
	all := l.AllNodes()
	f := func(idx uint16) bool {
		n := all[int(idx)%len(all)]
		succ, err := l.Successors(n)
		if err != nil {
			return false
		}
		for _, s := range succ {
			if s.Height() != n.Height()+1 || !l.Contains(s) || !s.Dominates(n) {
				return false
			}
		}
		pred, err := l.Predecessors(n)
		if err != nil {
			return false
		}
		for _, p := range pred {
			if p.Height() != n.Height()-1 || !l.Contains(p) || !n.Dominates(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the layer sizes sum to the lattice size.
func TestLayerSizesSumProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		ma, mb, mc := int(a%4), int(b%4), int(c%4)
		l, err := New([]string{"x", "y", "z"}, []int{ma, mb, mc})
		if err != nil {
			return false
		}
		total := 0
		for h := 0; h <= l.MaxHeight(); h++ {
			total += len(l.NodesAtHeight(h))
		}
		return total == l.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
