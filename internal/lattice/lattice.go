// Package lattice models the full-domain generalization lattice searched by
// Samarati's algorithm, Incognito and related full-domain recoding schemes.
//
// A lattice node is a vector of generalization levels, one per
// quasi-identifier attribute, bounded component-wise by the maximum level of
// that attribute's hierarchy. Node (0,0,...,0) is the original table; the top
// node generalizes every attribute to its root. The lattice is ordered by the
// component-wise <= relation; the *height* of a node is the sum of its
// components, which is the classic "minimal generalization" cost used by
// Samarati's binary search.
package lattice

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrShape is returned when a node's arity does not match the lattice.
var ErrShape = errors.New("lattice: node arity does not match lattice dimensions")

// Node is a vector of generalization levels, one per attribute of the
// lattice, in lattice attribute order.
type Node []int

// Clone returns a copy of the node.
func (n Node) Clone() Node {
	out := make(Node, len(n))
	copy(out, n)
	return out
}

// Height returns the sum of the node's levels.
func (n Node) Height() int {
	h := 0
	for _, l := range n {
		h += l
	}
	return h
}

// Key returns a canonical string form usable as a map key.
func (n Node) Key() string {
	parts := make([]string, len(n))
	for i, l := range n {
		parts[i] = fmt.Sprint(l)
	}
	return strings.Join(parts, ",")
}

// ParseNode parses the output of Key back into a Node.
func ParseNode(key string) (Node, error) {
	if key == "" {
		return nil, errors.New("lattice: empty node key")
	}
	parts := strings.Split(key, ",")
	out := make(Node, len(parts))
	for i, p := range parts {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &v); err != nil {
			return nil, fmt.Errorf("lattice: bad node key %q: %w", key, err)
		}
		out[i] = v
	}
	return out, nil
}

// Dominates reports whether n >= o component-wise (n is at least as general
// as o in every attribute).
func (n Node) Dominates(o Node) bool {
	if len(n) != len(o) {
		return false
	}
	for i := range n {
		if n[i] < o[i] {
			return false
		}
	}
	return true
}

// Equal reports component-wise equality.
func (n Node) Equal(o Node) bool {
	if len(n) != len(o) {
		return false
	}
	for i := range n {
		if n[i] != o[i] {
			return false
		}
	}
	return true
}

// Lattice is the full-domain generalization lattice for a fixed attribute
// order with fixed per-attribute maximum levels.
type Lattice struct {
	attrs     []string
	maxLevels []int
}

// New builds a lattice over the given attributes with the given per-attribute
// maximum generalization levels.
func New(attrs []string, maxLevels []int) (*Lattice, error) {
	if len(attrs) == 0 {
		return nil, errors.New("lattice: no attributes")
	}
	if len(attrs) != len(maxLevels) {
		return nil, fmt.Errorf("lattice: %d attributes but %d level bounds", len(attrs), len(maxLevels))
	}
	for i, m := range maxLevels {
		if m < 0 {
			return nil, fmt.Errorf("lattice: negative max level %d for %q", m, attrs[i])
		}
	}
	return &Lattice{
		attrs:     append([]string(nil), attrs...),
		maxLevels: append([]int(nil), maxLevels...),
	}, nil
}

// Attributes returns the lattice's attribute order.
func (l *Lattice) Attributes() []string { return append([]string(nil), l.attrs...) }

// MaxLevels returns the per-attribute maximum levels.
func (l *Lattice) MaxLevels() []int { return append([]int(nil), l.maxLevels...) }

// Dimensions returns the number of attributes.
func (l *Lattice) Dimensions() int { return len(l.attrs) }

// Bottom returns the all-zero node (no generalization).
func (l *Lattice) Bottom() Node { return make(Node, len(l.attrs)) }

// Top returns the node with every attribute at its maximum level.
func (l *Lattice) Top() Node {
	out := make(Node, len(l.maxLevels))
	copy(out, l.maxLevels)
	return out
}

// MaxHeight returns the height of the top node.
func (l *Lattice) MaxHeight() int { return l.Top().Height() }

// Size returns the total number of nodes in the lattice.
func (l *Lattice) Size() int {
	n := 1
	for _, m := range l.maxLevels {
		n *= m + 1
	}
	return n
}

// Contains reports whether node is a valid member of the lattice.
func (l *Lattice) Contains(n Node) bool {
	if len(n) != len(l.maxLevels) {
		return false
	}
	for i, v := range n {
		if v < 0 || v > l.maxLevels[i] {
			return false
		}
	}
	return true
}

// validate returns ErrShape for nodes of the wrong arity.
func (l *Lattice) validate(n Node) error {
	if len(n) != len(l.maxLevels) {
		return fmt.Errorf("%w: node has %d components, lattice has %d", ErrShape, len(n), len(l.maxLevels))
	}
	return nil
}

// Successors returns the immediate generalizations of n: every node obtained
// by incrementing exactly one component that is below its maximum.
func (l *Lattice) Successors(n Node) ([]Node, error) {
	if err := l.validate(n); err != nil {
		return nil, err
	}
	var out []Node
	for i := range n {
		if n[i] < l.maxLevels[i] {
			s := n.Clone()
			s[i]++
			out = append(out, s)
		}
	}
	return out, nil
}

// Predecessors returns the immediate specializations of n: every node
// obtained by decrementing exactly one positive component.
func (l *Lattice) Predecessors(n Node) ([]Node, error) {
	if err := l.validate(n); err != nil {
		return nil, err
	}
	var out []Node
	for i := range n {
		if n[i] > 0 {
			p := n.Clone()
			p[i]--
			out = append(out, p)
		}
	}
	return out, nil
}

// NodesAtHeight enumerates all nodes whose components sum to h, in
// deterministic lexicographic order. Samarati's algorithm evaluates each
// height layer; Incognito's breadth-first search uses successive layers.
func (l *Lattice) NodesAtHeight(h int) []Node {
	var out []Node
	cur := make(Node, len(l.maxLevels))
	var rec func(dim, remaining int)
	rec = func(dim, remaining int) {
		if dim == len(l.maxLevels) {
			if remaining == 0 {
				out = append(out, cur.Clone())
			}
			return
		}
		max := l.maxLevels[dim]
		if max > remaining {
			max = remaining
		}
		for v := 0; v <= max; v++ {
			cur[dim] = v
			rec(dim+1, remaining-v)
		}
		cur[dim] = 0
	}
	if h >= 0 && h <= l.MaxHeight() {
		rec(0, h)
	}
	return out
}

// AllNodes enumerates every node of the lattice ordered by height then
// lexicographically. Use with care: the count is the product of
// (maxLevel+1) over all attributes.
func (l *Lattice) AllNodes() []Node {
	var out []Node
	for h := 0; h <= l.MaxHeight(); h++ {
		out = append(out, l.NodesAtHeight(h)...)
	}
	return out
}

// GeneralizationsOf returns every node that dominates n (including n itself),
// ordered by height. These are the candidate releases that are at least as
// general as n.
func (l *Lattice) GeneralizationsOf(n Node) ([]Node, error) {
	if err := l.validate(n); err != nil {
		return nil, err
	}
	var out []Node
	for _, cand := range l.AllNodes() {
		if cand.Dominates(n) {
			out = append(out, cand)
		}
	}
	return out, nil
}

// SortNodes orders nodes by height, then lexicographically. It sorts in
// place and returns the slice for convenience.
func SortNodes(nodes []Node) []Node {
	sort.Slice(nodes, func(i, j int) bool {
		hi, hj := nodes[i].Height(), nodes[j].Height()
		if hi != hj {
			return hi < hj
		}
		for d := range nodes[i] {
			if nodes[i][d] != nodes[j][d] {
				return nodes[i][d] < nodes[j][d]
			}
		}
		return false
	})
	return nodes
}

// Project returns the node restricted to the given attribute subset (by
// lattice attribute name), along with a sub-lattice over that subset.
// Incognito uses projections to test anonymity of attribute subsets before
// combining them.
func (l *Lattice) Project(n Node, attrs []string) (*Lattice, Node, error) {
	if err := l.validate(n); err != nil {
		return nil, nil, err
	}
	idx := make([]int, 0, len(attrs))
	for _, a := range attrs {
		found := -1
		for i, la := range l.attrs {
			if la == a {
				found = i
				break
			}
		}
		if found == -1 {
			return nil, nil, fmt.Errorf("lattice: attribute %q not in lattice", a)
		}
		idx = append(idx, found)
	}
	subAttrs := make([]string, len(idx))
	subMax := make([]int, len(idx))
	subNode := make(Node, len(idx))
	for i, j := range idx {
		subAttrs[i] = l.attrs[j]
		subMax[i] = l.maxLevels[j]
		subNode[i] = n[j]
	}
	sub, err := New(subAttrs, subMax)
	if err != nil {
		return nil, nil, err
	}
	return sub, subNode, nil
}
