// Package policy defines the declarative privacy-policy document of the
// release pipeline: a versioned, JSON-serializable description of the privacy
// criteria a release must satisfy (k-anonymity, (α,k)-anonymity, the
// l-diversity family, t-closeness) plus the suppression budget, composable as
// a list of typed criterion objects instead of a flat bag of scalars.
//
// The document is the API boundary's source of truth. It decodes strictly —
// unknown criterion types, unknown fields and duplicate criteria are rejected
// rather than silently ignored — and canonicalizes to a stable form (fixed
// criterion order, defaults filled, version pinned), so the same policy
// always encodes to the same bytes: clients can diff the canonical echo of a
// request against what they sent, and stored policies compare by content.
//
// Translation to and from the legacy flat parameters (k/l/c/t/diversity/
// sensitive/suppression) lives in translate.go: every flat request maps onto
// exactly one canonical policy, and every flat-expressible policy maps back,
// which is what lets the deprecated flat surface ride on the policy pipeline
// without behavior change.
package policy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Version is the current policy document version. Documents that omit the
// version default to it; any other value is rejected so a future v2 can
// change semantics without silently misreading v1 consumers.
const Version = 1

// Criterion type names — the "type" discriminator of one criterion object.
const (
	// KAnonymity bounds record linkage: every equivalence class has at
	// least k records. Fields: k.
	KAnonymity = "k-anonymity"
	// AlphaKAnonymity is (α,k)-anonymity: k-anonymity plus a cap α on the
	// relative frequency of any sensitive value inside a class. Fields: k,
	// alpha, sensitive.
	AlphaKAnonymity = "alpha-k-anonymity"
	// DistinctLDiversity requires l distinct sensitive values per class.
	// Fields: l, sensitive.
	DistinctLDiversity = "distinct-l-diversity"
	// EntropyLDiversity requires per-class sensitive entropy of at least
	// log(l); l may be fractional. Fields: l, sensitive.
	EntropyLDiversity = "entropy-l-diversity"
	// RecursiveCLDiversity is recursive (c,l)-diversity. Fields: l, c,
	// sensitive.
	RecursiveCLDiversity = "recursive-cl-diversity"
	// TCloseness bounds the earth mover's distance between each class's
	// sensitive distribution and the table's. Fields: t, sensitive, ordered.
	TCloseness = "t-closeness"
	// MInvariance is Xiao & Tao's m-invariance for sequential re-publication:
	// every record keeps a fixed m-value sensitive signature across releases
	// of the same table, padded with counterfeits when needed, so
	// intersecting consecutive releases never narrows an individual below m
	// sensitive values. It guards a release *history*, not a single table,
	// and needs a stable per-record identity column. Fields: m, id,
	// sensitive.
	MInvariance = "m-invariance"
)

// typeRank fixes the canonical criterion order: record-linkage models first,
// then the l-diversity family, then t-closeness.
var typeRank = map[string]int{
	KAnonymity:           0,
	AlphaKAnonymity:      1,
	DistinctLDiversity:   2,
	EntropyLDiversity:    3,
	RecursiveCLDiversity: 4,
	TCloseness:           5,
	MInvariance:          6,
}

// criterionFields lists, per criterion type, the parameter fields the type
// reads. Strict decoding rejects any other field, so a typo ("sensative") or
// a parameter pasted onto the wrong criterion ("t" on k-anonymity) surfaces
// as an error instead of silently weakening the policy.
var criterionFields = map[string]map[string]bool{
	KAnonymity:           {"k": true},
	AlphaKAnonymity:      {"k": true, "alpha": true, "sensitive": true},
	DistinctLDiversity:   {"l": true, "sensitive": true},
	EntropyLDiversity:    {"l": true, "sensitive": true},
	RecursiveCLDiversity: {"l": true, "c": true, "sensitive": true},
	TCloseness:           {"t": true, "sensitive": true, "ordered": true},
	MInvariance:          {"m": true, "id": true, "sensitive": true},
}

// Types returns every known criterion type in canonical order.
func Types() []string {
	out := make([]string, 0, len(typeRank))
	for t := range typeRank {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return typeRank[out[i]] < typeRank[out[j]] })
	return out
}

// Fields returns the parameter fields a criterion type reads (sorted), or
// nil for an unknown type — the schema reference docs/API.md is generated
// from.
func Fields(typ string) []string {
	fields, ok := criterionFields[typ]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(fields))
	for f := range fields {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Criterion is one typed privacy criterion of a policy. Type selects the
// model; the remaining fields are the union of every model's parameters, and
// each type reads only its own (enforced by the strict decoder and Validate).
type Criterion struct {
	// Type is one of the criterion type constants.
	Type string `json:"type"`
	// K is the class-size bound of k-anonymity and (α,k)-anonymity.
	K int `json:"k,omitempty"`
	// Alpha is the (α,k)-anonymity frequency cap in (0,1].
	Alpha float64 `json:"alpha,omitempty"`
	// L is the diversity parameter; integral for the distinct and recursive
	// variants, possibly fractional for entropy.
	L float64 `json:"l,omitempty"`
	// C is the recursive (c,l)-diversity constant (default 3).
	C float64 `json:"c,omitempty"`
	// T is the t-closeness bound in (0,1].
	T float64 `json:"t,omitempty"`
	// Sensitive names the sensitive attribute the criterion guards; empty
	// means the pipeline's resolved default (the schema's first sensitive
	// column, or the request-level override).
	Sensitive string `json:"sensitive,omitempty"`
	// Ordered selects the ordered-distance EMD for t-closeness.
	Ordered bool `json:"ordered,omitempty"`
	// M is the m-invariance signature size: every record's bucket exposes at
	// least m distinct sensitive values, fixed across releases.
	M int `json:"m,omitempty"`
	// ID names the stable per-record identity column m-invariance tracks
	// records by across releases.
	ID string `json:"id,omitempty"`
}

// UnmarshalJSON decodes one criterion strictly: the type must be known and
// every other key must be a field that type reads.
func (c *Criterion) UnmarshalJSON(data []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("policy: criterion: %w", err)
	}
	typRaw, ok := raw["type"]
	if !ok {
		return fmt.Errorf("policy: criterion is missing the required \"type\" field")
	}
	var typ string
	if err := json.Unmarshal(typRaw, &typ); err != nil {
		return fmt.Errorf("policy: criterion type: %w", err)
	}
	fields, ok := criterionFields[typ]
	if !ok {
		return fmt.Errorf("policy: unknown criterion type %q (known: %v)", typ, Types())
	}
	for key := range raw {
		if key == "type" {
			continue
		}
		if !fields[key] {
			return fmt.Errorf("policy: criterion %q: unknown field %q", typ, key)
		}
	}
	// The shadow type drops the custom unmarshaler so the typed fields decode
	// through the standard path (wrong value types still error).
	type shadow Criterion
	var s shadow
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("policy: criterion %q: %w", typ, err)
	}
	*c = Criterion(s)
	return nil
}

// Validate checks the criterion's parameters for its type.
func (c Criterion) Validate() error {
	switch c.Type {
	case KAnonymity:
		if c.K < 1 {
			return fmt.Errorf("policy: %s: k must be at least 1 (got %d)", c.Type, c.K)
		}
	case AlphaKAnonymity:
		if c.K < 1 {
			return fmt.Errorf("policy: %s: k must be at least 1 (got %d)", c.Type, c.K)
		}
		if c.Alpha <= 0 || c.Alpha > 1 {
			return fmt.Errorf("policy: %s: alpha must be in (0,1] (got %v)", c.Type, c.Alpha)
		}
	case DistinctLDiversity:
		if c.L < 2 || c.L != float64(int(c.L)) {
			return fmt.Errorf("policy: %s: l must be an integer of at least 2 (got %v)", c.Type, c.L)
		}
	case EntropyLDiversity:
		if c.L <= 1 {
			return fmt.Errorf("policy: %s: l must be greater than 1 (got %v)", c.Type, c.L)
		}
	case RecursiveCLDiversity:
		if c.L < 2 || c.L != float64(int(c.L)) {
			return fmt.Errorf("policy: %s: l must be an integer of at least 2 (got %v)", c.Type, c.L)
		}
		if c.C < 0 {
			return fmt.Errorf("policy: %s: c must be positive (got %v)", c.Type, c.C)
		}
	case TCloseness:
		if c.T <= 0 || c.T > 1 {
			return fmt.Errorf("policy: %s: t must be in (0,1] (got %v)", c.Type, c.T)
		}
	case MInvariance:
		if c.M < 2 {
			return fmt.Errorf("policy: %s: m must be at least 2 (got %d)", c.Type, c.M)
		}
		if c.ID == "" {
			return fmt.Errorf("policy: %s: an id column is required to track records across releases", c.Type)
		}
	default:
		return fmt.Errorf("policy: unknown criterion type %q (known: %v)", c.Type, Types())
	}
	return nil
}

// Describe renders the criterion compactly, e.g. "k-anonymity(k=10)" or
// "t-closeness(t=0.2, sensitive=disease)".
func (c Criterion) Describe() string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s(", c.Type)
	sep := ""
	emit := func(format string, args ...any) {
		buf.WriteString(sep)
		fmt.Fprintf(&buf, format, args...)
		sep = ", "
	}
	switch c.Type {
	case KAnonymity:
		emit("k=%d", c.K)
	case AlphaKAnonymity:
		emit("alpha=%v", c.Alpha)
		emit("k=%d", c.K)
	case DistinctLDiversity, EntropyLDiversity:
		emit("l=%v", c.L)
	case RecursiveCLDiversity:
		emit("c=%v", c.C)
		emit("l=%v", c.L)
	case TCloseness:
		emit("t=%v", c.T)
		if c.Ordered {
			emit("ordered")
		}
	case MInvariance:
		emit("m=%d", c.M)
		emit("id=%s", c.ID)
	}
	if c.Sensitive != "" {
		emit("sensitive=%s", c.Sensitive)
	}
	buf.WriteString(")")
	return buf.String()
}

// Suppression is the policy's record-suppression budget.
type Suppression struct {
	// MaxFraction bounds suppressed records as a fraction of the table in
	// [0,1]. Honored by the algorithms that declare a max_suppression
	// parameter (datafly, samarati); advisory elsewhere.
	MaxFraction float64 `json:"max_fraction"`
}

// Policy is one declarative privacy-policy document: the versioned list of
// criteria a release must satisfy plus the suppression budget. The zero
// value is not valid; build policies with composition, FromFlat, or Parse.
type Policy struct {
	// Version is the document version (see the Version constant).
	Version int `json:"version"`
	// Criteria lists the privacy criteria, at most one per type.
	Criteria []Criterion `json:"criteria"`
	// Suppression is the optional suppression budget.
	Suppression *Suppression `json:"suppression,omitempty"`
}

// Parse strictly decodes a policy document and returns its canonical form:
// unknown top-level fields, unknown criterion types/fields, duplicate
// criteria and out-of-range parameters are all errors.
func Parse(data []byte) (*Policy, error) {
	return ParseReader(bytes.NewReader(data))
}

// ParseReader is Parse over a stream.
func ParseReader(r io.Reader) (*Policy, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Policy
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("policy: decode: %w", err)
	}
	// A second document in the stream is garbage, not a policy file.
	if dec.More() {
		return nil, fmt.Errorf("policy: decode: trailing data after the policy document")
	}
	return p.Canonical()
}

// Validate checks the document: supported version, at least one criterion,
// no duplicate criterion types, every criterion and the suppression budget
// in range.
func (p *Policy) Validate() error {
	if p.Version != 0 && p.Version != Version {
		return fmt.Errorf("policy: unsupported version %d (this build understands version %d)", p.Version, Version)
	}
	if len(p.Criteria) == 0 {
		return fmt.Errorf("policy: at least one criterion is required")
	}
	seen := make(map[string]bool, len(p.Criteria))
	for _, c := range p.Criteria {
		if err := c.Validate(); err != nil {
			return err
		}
		if seen[c.Type] {
			return fmt.Errorf("policy: duplicate criterion %q", c.Type)
		}
		seen[c.Type] = true
	}
	if p.Suppression != nil {
		if f := p.Suppression.MaxFraction; f < 0 || f > 1 {
			return fmt.Errorf("policy: suppression max_fraction must be in [0,1] (got %v)", f)
		}
	}
	return nil
}

// Canonical validates the document and returns its canonical form: version
// pinned, criteria sorted into the fixed type order, the recursive c default
// filled, and a zero suppression budget dropped. The receiver is unchanged.
func (p *Policy) Canonical() (*Policy, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := p.Clone()
	out.Version = Version
	for i := range out.Criteria {
		if out.Criteria[i].Type == RecursiveCLDiversity && out.Criteria[i].C == 0 {
			out.Criteria[i].C = 3
		}
	}
	sort.SliceStable(out.Criteria, func(i, j int) bool {
		return typeRank[out.Criteria[i].Type] < typeRank[out.Criteria[j].Type]
	})
	if out.Suppression != nil && out.Suppression.MaxFraction == 0 {
		out.Suppression = nil
	}
	return out, nil
}

// Clone returns a deep copy.
func (p *Policy) Clone() *Policy {
	out := &Policy{Version: p.Version, Criteria: append([]Criterion(nil), p.Criteria...)}
	if p.Suppression != nil {
		s := *p.Suppression
		out.Suppression = &s
	}
	return out
}

// Encode renders the canonical form as indented JSON (trailing newline
// included): the stable wire and file representation of the policy.
func (p *Policy) Encode() ([]byte, error) {
	canon, err := p.Canonical()
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(canon, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Equal reports whether two policies have the same canonical form. Invalid
// policies are equal to nothing, including themselves.
func (p *Policy) Equal(q *Policy) bool {
	if p == nil || q == nil {
		return p == q
	}
	a, err := p.Encode()
	if err != nil {
		return false
	}
	b, err := q.Encode()
	if err != nil {
		return false
	}
	return bytes.Equal(a, b)
}

// Describe renders the policy as a compact one-line summary, e.g.
// "k-anonymity(k=10) + t-closeness(t=0.2)".
func (p *Policy) Describe() string {
	var buf bytes.Buffer
	for i, c := range p.Criteria {
		if i > 0 {
			buf.WriteString(" + ")
		}
		buf.WriteString(c.Describe())
	}
	if p.Suppression != nil && p.Suppression.MaxFraction > 0 {
		fmt.Fprintf(&buf, " [suppress<=%v]", p.Suppression.MaxFraction)
	}
	return buf.String()
}

// Find returns the criterion of the given type, if present.
func (p *Policy) Find(typ string) (Criterion, bool) {
	for _, c := range p.Criteria {
		if c.Type == typ {
			return c, true
		}
	}
	return Criterion{}, false
}

// Has reports whether a criterion of the given type is present.
func (p *Policy) Has(typ string) bool {
	_, ok := p.Find(typ)
	return ok
}

// CriterionTypes returns the types present, in the policy's order.
func (p *Policy) CriterionTypes() []string {
	out := make([]string, len(p.Criteria))
	for i, c := range p.Criteria {
		out[i] = c.Type
	}
	return out
}

// Restrict returns a copy keeping only the criteria whose type the supported
// set lists (the suppression budget is kept: it is advisory for algorithms
// without a suppression parameter). It implements the legacy flat-parameter
// shim, where parameters an algorithm does not read have always been ignored
// silently; explicit policy documents are validated strictly instead (see
// engine.ValidateCriteria).
func (p *Policy) Restrict(supported []string) *Policy {
	ok := make(map[string]bool, len(supported))
	for _, t := range supported {
		ok[t] = true
	}
	out := p.Clone()
	kept := out.Criteria[:0]
	for _, c := range out.Criteria {
		if ok[c.Type] {
			kept = append(kept, c)
		}
	}
	out.Criteria = kept
	return out
}
