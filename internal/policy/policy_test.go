package policy

import (
	"bytes"
	"strings"
	"testing"
)

func mustParse(t *testing.T, doc string) *Policy {
	t.Helper()
	p, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse(%s): %v", doc, err)
	}
	return p
}

// TestRoundTripStable locks in the canonicalization contract: decode →
// canonicalize → encode is stable, i.e. re-parsing the encoded form encodes
// to the same bytes, regardless of criterion order or omitted defaults in
// the input.
func TestRoundTripStable(t *testing.T) {
	docs := []string{
		`{"version":1,"criteria":[{"type":"k-anonymity","k":10}]}`,
		// Criteria out of canonical order, recursive c omitted.
		`{"criteria":[
			{"type":"t-closeness","t":0.2,"sensitive":"disease","ordered":true},
			{"type":"recursive-cl-diversity","l":3},
			{"type":"k-anonymity","k":5}
		],"suppression":{"max_fraction":0.02}}`,
		`{"version":1,"criteria":[
			{"type":"alpha-k-anonymity","k":4,"alpha":0.5,"sensitive":"diagnosis"},
			{"type":"entropy-l-diversity","l":2.5,"sensitive":"diagnosis"}
		]}`,
		// A zero suppression budget canonicalizes away.
		`{"criteria":[{"type":"k-anonymity","k":2}],"suppression":{"max_fraction":0}}`,
	}
	for _, doc := range docs {
		p := mustParse(t, doc)
		enc1, err := p.Encode()
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		p2, err := Parse(enc1)
		if err != nil {
			t.Fatalf("re-Parse(%s): %v", enc1, err)
		}
		enc2, err := p2.Encode()
		if err != nil {
			t.Fatalf("re-Encode: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Errorf("round trip not stable:\nfirst:  %s\nsecond: %s", enc1, enc2)
		}
		if !p.Equal(p2) {
			t.Errorf("Equal(%s) = false after round trip", doc)
		}
	}
}

// TestCanonicalOrderAndDefaults pins the canonical form: fixed criterion
// order, version filled, recursive c defaulted to 3.
func TestCanonicalOrderAndDefaults(t *testing.T) {
	p := mustParse(t, `{"criteria":[
		{"type":"t-closeness","t":0.1},
		{"type":"recursive-cl-diversity","l":2},
		{"type":"alpha-k-anonymity","k":3,"alpha":0.4},
		{"type":"k-anonymity","k":3}
	]}`)
	want := []string{KAnonymity, AlphaKAnonymity, RecursiveCLDiversity, TCloseness}
	got := p.CriterionTypes()
	if len(got) != len(want) {
		t.Fatalf("types = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("types = %v, want %v", got, want)
		}
	}
	if p.Version != Version {
		t.Errorf("Version = %d", p.Version)
	}
	rc, _ := p.Find(RecursiveCLDiversity)
	if rc.C != 3 {
		t.Errorf("recursive c default = %v, want 3", rc.C)
	}
}

// TestStrictRejection covers every strict-decode failure mode: unknown
// criterion types, unknown fields (top-level, per-criterion, wrong-criterion
// parameters), duplicate criteria, bad versions, out-of-range parameters and
// trailing garbage.
func TestStrictRejection(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"unknown type", `{"criteria":[{"type":"z-anonymity","k":3}]}`, "unknown criterion type"},
		{"m-invariance m too small", `{"criteria":[{"type":"m-invariance","m":1,"id":"pid"}]}`, "m must be at least 2"},
		{"m-invariance without id", `{"criteria":[{"type":"m-invariance","m":3}]}`, "id column is required"},
		{"missing type", `{"criteria":[{"k":3}]}`, "missing the required"},
		{"unknown criterion field", `{"criteria":[{"type":"k-anonymity","k":3,"sensative":"x"}]}`, "unknown field"},
		{"foreign parameter", `{"criteria":[{"type":"k-anonymity","k":3,"t":0.2}]}`, `unknown field "t"`},
		{"ordered on diversity", `{"criteria":[{"type":"distinct-l-diversity","l":2,"ordered":true}]}`, `unknown field "ordered"`},
		{"unknown top-level field", `{"criteria":[{"type":"k-anonymity","k":3}],"suppressionn":{}}`, "unknown field"},
		{"duplicate criterion", `{"criteria":[{"type":"k-anonymity","k":3},{"type":"k-anonymity","k":5}]}`, "duplicate criterion"},
		{"bad version", `{"version":2,"criteria":[{"type":"k-anonymity","k":3}]}`, "unsupported version"},
		{"no criteria", `{"version":1,"criteria":[]}`, "at least one criterion"},
		{"k out of range", `{"criteria":[{"type":"k-anonymity","k":0}]}`, "k must be at least 1"},
		{"alpha out of range", `{"criteria":[{"type":"alpha-k-anonymity","k":2,"alpha":1.5}]}`, "alpha must be in"},
		{"fractional distinct l", `{"criteria":[{"type":"distinct-l-diversity","l":2.5}]}`, "must be an integer"},
		{"entropy l too small", `{"criteria":[{"type":"entropy-l-diversity","l":1}]}`, "greater than 1"},
		{"t out of range", `{"criteria":[{"type":"t-closeness","t":1.5}]}`, "t must be in"},
		{"t zero", `{"criteria":[{"type":"t-closeness","t":0}]}`, "t must be in"},
		{"suppression out of range", `{"criteria":[{"type":"k-anonymity","k":2}],"suppression":{"max_fraction":1.5}}`, "max_fraction"},
		{"wrong value type", `{"criteria":[{"type":"k-anonymity","k":"ten"}]}`, "cannot unmarshal"},
		{"trailing data", `{"criteria":[{"type":"k-anonymity","k":2}]} {"version":1}`, "trailing data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestDescribe(t *testing.T) {
	p := mustParse(t, `{"criteria":[
		{"type":"k-anonymity","k":10},
		{"type":"t-closeness","t":0.2,"sensitive":"disease"}
	],"suppression":{"max_fraction":0.05}}`)
	got := p.Describe()
	want := "k-anonymity(k=10) + t-closeness(t=0.2, sensitive=disease) [suppress<=0.05]"
	if got != want {
		t.Errorf("Describe = %q, want %q", got, want)
	}
}

func TestRestrict(t *testing.T) {
	p := mustParse(t, `{"criteria":[
		{"type":"k-anonymity","k":5},
		{"type":"distinct-l-diversity","l":2,"sensitive":"d"},
		{"type":"t-closeness","t":0.3,"sensitive":"d"}
	],"suppression":{"max_fraction":0.02}}`)
	r := p.Restrict([]string{KAnonymity})
	if got := r.CriterionTypes(); len(got) != 1 || got[0] != KAnonymity {
		t.Errorf("Restrict kept %v", got)
	}
	if r.SuppressionBudget() != 0.02 {
		t.Errorf("Restrict dropped the suppression budget")
	}
	// The original is untouched.
	if len(p.Criteria) != 3 {
		t.Errorf("Restrict mutated the receiver: %v", p.CriterionTypes())
	}
}

func TestHelpers(t *testing.T) {
	p := mustParse(t, `{"criteria":[
		{"type":"k-anonymity","k":7},
		{"type":"distinct-l-diversity","l":4}
	]}`)
	if p.KAnonymityK() != 7 {
		t.Errorf("KAnonymityK = %d", p.KAnonymityK())
	}
	if p.BucketL() != 4 {
		t.Errorf("BucketL = %d", p.BucketL())
	}
	if !p.NeedsSensitive() {
		t.Error("NeedsSensitive = false for an unnamed diversity sensitive")
	}
	resolved := p.ResolveSensitive("disease")
	if c, _ := resolved.Find(DistinctLDiversity); c.Sensitive != "disease" {
		t.Errorf("ResolveSensitive: %+v", c)
	}
	if c, _ := p.Find(DistinctLDiversity); c.Sensitive != "" {
		t.Error("ResolveSensitive mutated the receiver")
	}
}
