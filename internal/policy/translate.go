package policy

import (
	"errors"
	"fmt"

	"github.com/ppdp/ppdp/internal/privacy"
)

// ErrNoCriteria is returned by FromFlat when the flat parameters enable no
// criterion at all (k, l and t all disabled). Callers implementing the
// deprecated flat shim treat it as "no policy" and let the algorithm's own
// validation produce its natural error.
var ErrNoCriteria = errors.New("policy: flat parameters enable no privacy criterion")

// Flat is the legacy flat-parameter view of a policy: the k/l/c/t/diversity/
// sensitive/suppression scalar bag the pre-policy API exposed. FromFlat and
// Policy.Flat translate between the two representations; the flat surface is
// deprecated but still accepted everywhere, riding through this translation.
type Flat struct {
	// K enables k-anonymity when positive.
	K int
	// L enables the l-diversity family when greater than 1.
	L int
	// DiversityMode selects the family member: "distinct" (also the empty
	// default), "entropy" or "recursive".
	DiversityMode string
	// C is the recursive (c,l)-diversity constant (0 means the default 3).
	C float64
	// T enables t-closeness when positive.
	T float64
	// OrderedSensitive selects the ordered-distance EMD for t-closeness.
	OrderedSensitive bool
	// Sensitive names the sensitive attribute for the attribute-linkage
	// criteria ("" means the pipeline's resolved default).
	Sensitive string
	// MaxSuppression is the suppression budget (0 disables).
	MaxSuppression float64
}

// Flat diversity-mode names (mirroring core's DiversityMode values).
const (
	FlatDistinct  = "distinct"
	FlatEntropy   = "entropy"
	FlatRecursive = "recursive"
)

// diversityFamily is the subset of criterion types one flat DiversityMode
// selects among; a flat-expressible policy carries at most one of them.
var diversityFamily = map[string]bool{
	DistinctLDiversity:   true,
	EntropyLDiversity:    true,
	RecursiveCLDiversity: true,
}

// IsDiversity reports whether a criterion type belongs to the l-diversity
// family.
func IsDiversity(typ string) bool { return diversityFamily[typ] }

// FromFlat translates flat parameters into their canonical policy: K>0 adds
// k-anonymity, L>1 adds the selected l-diversity variant, T>0 adds
// t-closeness, and a positive MaxSuppression becomes the suppression budget.
// The zero thresholds mirror the flat API's "zero disables" contract exactly,
// so a flat request and its translation enforce the same criteria.
func FromFlat(f Flat) (*Policy, error) {
	p := &Policy{Version: Version}
	if f.K > 0 {
		p.Criteria = append(p.Criteria, Criterion{Type: KAnonymity, K: f.K})
	}
	if f.L > 1 {
		switch f.DiversityMode {
		case FlatDistinct, "":
			p.Criteria = append(p.Criteria, Criterion{Type: DistinctLDiversity, L: float64(f.L), Sensitive: f.Sensitive})
		case FlatEntropy:
			p.Criteria = append(p.Criteria, Criterion{Type: EntropyLDiversity, L: float64(f.L), Sensitive: f.Sensitive})
		case FlatRecursive:
			p.Criteria = append(p.Criteria, Criterion{Type: RecursiveCLDiversity, L: float64(f.L), C: f.C, Sensitive: f.Sensitive})
		default:
			return nil, fmt.Errorf("policy: unknown diversity mode %q (known: distinct, entropy, recursive)", f.DiversityMode)
		}
	}
	if f.T > 0 {
		p.Criteria = append(p.Criteria, Criterion{Type: TCloseness, T: f.T, Sensitive: f.Sensitive, Ordered: f.OrderedSensitive})
	}
	if len(p.Criteria) == 0 {
		return nil, ErrNoCriteria
	}
	if f.MaxSuppression > 0 {
		p.Suppression = &Suppression{MaxFraction: f.MaxSuppression}
	}
	return p.Canonical()
}

// Flat translates the policy back to flat parameters — the inverse of
// FromFlat, completing the bidirectional mapping between the two request
// surfaces. The pipeline itself only needs the forward direction; this
// inverse exists for callers bridging policies back onto flat-only
// consumers (older clients, config files) and for the translation tests
// that prove the mapping round-trips. Policies the flat surface cannot
// express — an (α,k)-anonymity criterion, more than one l-diversity
// variant, a fractional entropy l, or criteria disagreeing on the
// sensitive attribute — return an error.
func (p *Policy) Flat() (Flat, error) {
	canon, err := p.Canonical()
	if err != nil {
		return Flat{}, err
	}
	var f Flat
	sensitiveSet := false
	takeSensitive := func(typ, s string) error {
		if s == "" {
			return nil
		}
		if sensitiveSet && f.Sensitive != s {
			return fmt.Errorf("policy: not expressible as flat parameters: criteria disagree on the sensitive attribute (%q vs %q)", f.Sensitive, s)
		}
		f.Sensitive = s
		sensitiveSet = true
		return nil
	}
	for _, c := range canon.Criteria {
		if IsDiversity(c.Type) && f.DiversityMode != "" {
			return Flat{}, fmt.Errorf("policy: not expressible as flat parameters: more than one l-diversity criterion")
		}
		switch c.Type {
		case KAnonymity:
			f.K = c.K
		case AlphaKAnonymity, MInvariance:
			return Flat{}, fmt.Errorf("policy: not expressible as flat parameters: %s has no flat equivalent", c.Type)
		case DistinctLDiversity:
			f.L, f.DiversityMode = int(c.L), FlatDistinct
		case EntropyLDiversity:
			if c.L != float64(int(c.L)) {
				return Flat{}, fmt.Errorf("policy: not expressible as flat parameters: entropy l=%v is fractional", c.L)
			}
			f.L, f.DiversityMode = int(c.L), FlatEntropy
		case RecursiveCLDiversity:
			f.L, f.C, f.DiversityMode = int(c.L), c.C, FlatRecursive
		case TCloseness:
			f.T, f.OrderedSensitive = c.T, c.Ordered
		}
		if err := takeSensitive(c.Type, c.Sensitive); err != nil {
			return Flat{}, err
		}
	}
	if canon.Suppression != nil {
		f.MaxSuppression = canon.Suppression.MaxFraction
	}
	return f, nil
}

// KAnonymityK returns the class-size bound the policy implies — the largest
// k declared by a k-anonymity or (α,k)-anonymity criterion, or 0 when the
// policy carries neither. It is the value the engine Spec's K field
// expects: a policy declaring only alpha-k-anonymity still bounds every
// class at its k.
func (p *Policy) KAnonymityK() int {
	k := 0
	for _, c := range p.Criteria {
		if (c.Type == KAnonymity || c.Type == AlphaKAnonymity) && c.K > k {
			k = c.K
		}
	}
	return k
}

// BucketL returns the distinct-l-diversity criterion's l, or 0 when the
// policy carries none — Anatomy's bucket size.
func (p *Policy) BucketL() int {
	if c, ok := p.Find(DistinctLDiversity); ok {
		return int(c.L)
	}
	return 0
}

// SuppressionBudget returns the suppression budget (0 when none).
func (p *Policy) SuppressionBudget() float64 {
	if p.Suppression != nil {
		return p.Suppression.MaxFraction
	}
	return 0
}

// NeedsSensitive reports whether any criterion guards a sensitive attribute
// without naming one, i.e. whether the pipeline must resolve a default.
func (p *Policy) NeedsSensitive() bool {
	for _, c := range p.Criteria {
		if c.Type != KAnonymity && c.Sensitive == "" {
			return true
		}
	}
	return false
}

// ResolveSensitive returns a copy with every empty criterion-level sensitive
// attribute filled from the default. Criteria that already name one keep it.
func (p *Policy) ResolveSensitive(def string) *Policy {
	out := p.Clone()
	for i := range out.Criteria {
		if out.Criteria[i].Type != KAnonymity && out.Criteria[i].Sensitive == "" {
			out.Criteria[i].Sensitive = def
		}
	}
	return out
}

// AttributeCriteria instantiates the policy's attribute-linkage criteria —
// everything beyond plain k-anonymity — as privacy.Criterion checkers, with
// empty sensitive attributes resolved to def. Criteria that need a sensitive
// attribute fail when neither they nor def name one.
func (p *Policy) AttributeCriteria(def string) ([]privacy.Criterion, error) {
	var out []privacy.Criterion
	for _, c := range p.Criteria {
		if c.Type == KAnonymity {
			continue
		}
		// m-invariance guards the release history, not one table's classes;
		// it is checked by the republish pipeline, not a per-class checker.
		if c.Type == MInvariance {
			continue
		}
		sensitive := c.Sensitive
		if sensitive == "" {
			sensitive = def
		}
		if sensitive == "" {
			return nil, fmt.Errorf("policy: %s requires a sensitive attribute", c.Type)
		}
		switch c.Type {
		case AlphaKAnonymity:
			out = append(out, privacy.AlphaKAnonymity{K: c.K, Alpha: c.Alpha, Sensitive: sensitive})
		case DistinctLDiversity:
			out = append(out, privacy.DistinctLDiversity{L: int(c.L), Sensitive: sensitive})
		case EntropyLDiversity:
			out = append(out, privacy.EntropyLDiversity{L: c.L, Sensitive: sensitive})
		case RecursiveCLDiversity:
			cc := c.C
			if cc == 0 {
				cc = 3
			}
			out = append(out, privacy.RecursiveCLDiversity{C: cc, L: int(c.L), Sensitive: sensitive})
		case TCloseness:
			out = append(out, privacy.TCloseness{T: c.T, Sensitive: sensitive, Ordered: c.Ordered})
		default:
			return nil, fmt.Errorf("policy: unknown criterion type %q", c.Type)
		}
	}
	return out, nil
}
