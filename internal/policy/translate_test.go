package policy

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"github.com/ppdp/ppdp/internal/privacy"
)

// TestFromFlatRoundTrip checks that every flat-expressible configuration
// survives Flat → Policy → Flat unchanged (modulo the defaults the
// canonical form fills in).
func TestFromFlatRoundTrip(t *testing.T) {
	cases := []Flat{
		{K: 10},
		{K: 5, MaxSuppression: 0.02},
		{K: 5, L: 3, Sensitive: "disease"},
		{K: 5, L: 2, DiversityMode: FlatEntropy, Sensitive: "disease"},
		{K: 5, L: 2, DiversityMode: FlatRecursive, C: 2.5, Sensitive: "disease"},
		{K: 4, T: 0.25, OrderedSensitive: true, Sensitive: "salary"},
		{L: 3, Sensitive: "disease"}, // anatomy-style, no k
		{K: 8, L: 4, T: 0.3, Sensitive: "disease", MaxSuppression: 0.1},
	}
	for i, f := range cases {
		pol, err := FromFlat(f)
		if err != nil {
			t.Fatalf("case %d: FromFlat: %v", i, err)
		}
		back, err := pol.Flat()
		if err != nil {
			t.Fatalf("case %d: Flat: %v", i, err)
		}
		// Canonicalization fills the defaults the flat zero values imply.
		want := f
		if want.L > 1 && want.DiversityMode == "" {
			want.DiversityMode = FlatDistinct
		}
		if want.DiversityMode == FlatRecursive && want.C == 0 {
			want.C = 3
		}
		if !reflect.DeepEqual(back, want) {
			t.Errorf("case %d: round trip = %+v, want %+v", i, back, want)
		}
	}
}

func TestFromFlatErrors(t *testing.T) {
	if _, err := FromFlat(Flat{}); !errors.Is(err, ErrNoCriteria) {
		t.Errorf("empty flat error = %v, want ErrNoCriteria", err)
	}
	if _, err := FromFlat(Flat{K: 3, L: 2, DiversityMode: "bogus"}); err == nil ||
		!strings.Contains(err.Error(), "unknown diversity mode") {
		t.Errorf("bogus mode error = %v", err)
	}
	// L=1 is the flat "disabled" threshold, same as the legacy pipeline.
	pol, err := FromFlat(Flat{K: 3, L: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pol.Has(DistinctLDiversity) {
		t.Error("L=1 produced a diversity criterion")
	}
}

// TestFlatNotExpressible covers the policies the flat surface cannot carry.
func TestFlatNotExpressible(t *testing.T) {
	docs := []string{
		// (α,k)-anonymity has no flat equivalent.
		`{"criteria":[{"type":"alpha-k-anonymity","k":3,"alpha":0.5,"sensitive":"d"}]}`,
		// Two diversity-family members at once.
		`{"criteria":[
			{"type":"distinct-l-diversity","l":2,"sensitive":"d"},
			{"type":"entropy-l-diversity","l":2.0001,"sensitive":"d"}
		]}`,
		// Fractional entropy l.
		`{"criteria":[{"type":"entropy-l-diversity","l":2.5,"sensitive":"d"}]}`,
		// Criteria disagreeing on the sensitive attribute.
		`{"criteria":[
			{"type":"distinct-l-diversity","l":2,"sensitive":"a"},
			{"type":"t-closeness","t":0.2,"sensitive":"b"}
		]}`,
	}
	for _, doc := range docs {
		p := mustParse(t, doc)
		if f, err := p.Flat(); err == nil {
			t.Errorf("Flat(%s) = %+v, want error", doc, f)
		}
	}
}

// TestAttributeCriteria checks the privacy.Criterion instantiation,
// including default-sensitive resolution.
func TestAttributeCriteria(t *testing.T) {
	p := mustParse(t, `{"criteria":[
		{"type":"k-anonymity","k":5},
		{"type":"alpha-k-anonymity","k":5,"alpha":0.6},
		{"type":"distinct-l-diversity","l":2},
		{"type":"entropy-l-diversity","l":2.5},
		{"type":"recursive-cl-diversity","l":2,"c":4},
		{"type":"t-closeness","t":0.3,"ordered":true}
	]}`)
	crits, err := p.AttributeCriteria("disease")
	if err != nil {
		t.Fatal(err)
	}
	want := []privacy.Criterion{
		privacy.AlphaKAnonymity{K: 5, Alpha: 0.6, Sensitive: "disease"},
		privacy.DistinctLDiversity{L: 2, Sensitive: "disease"},
		privacy.EntropyLDiversity{L: 2.5, Sensitive: "disease"},
		privacy.RecursiveCLDiversity{C: 4, L: 2, Sensitive: "disease"},
		privacy.TCloseness{T: 0.3, Sensitive: "disease", Ordered: true},
	}
	if !reflect.DeepEqual(crits, want) {
		t.Errorf("AttributeCriteria = %#v\nwant %#v", crits, want)
	}
	// No default and no named sensitive: an error, not a silent skip.
	if _, err := p.AttributeCriteria(""); err == nil ||
		!strings.Contains(err.Error(), "sensitive attribute") {
		t.Errorf("missing sensitive error = %v", err)
	}
	// k-anonymity alone needs no sensitive attribute.
	kOnly := mustParse(t, `{"criteria":[{"type":"k-anonymity","k":5}]}`)
	if crits, err := kOnly.AttributeCriteria(""); err != nil || len(crits) != 0 {
		t.Errorf("k-only AttributeCriteria = %v, %v", crits, err)
	}
}
