// Package hierarchy implements value generalization hierarchies (VGH), the
// central anonymization primitive of privacy-preserving data publishing.
//
// A hierarchy maps every original value of one attribute to progressively
// coarser values as the generalization level increases. Level 0 is always the
// original value; the highest level is a single root value (conventionally
// "*") that suppresses the attribute entirely. Categorical attributes use
// explicit taxonomy trees; numeric attributes use interval hierarchies with a
// widening bucket width per level.
//
// Hierarchies also expose the information needed by utility metrics: the size
// of the leaf domain and the number of leaves covered by a generalized value,
// which drive the normalized certainty penalty (NCP) and ILoss measures.
package hierarchy

import (
	"errors"
	"fmt"
)

// Common hierarchy errors.
var (
	// ErrUnknownValue is returned when a value outside the hierarchy's
	// domain is generalized.
	ErrUnknownValue = errors.New("hierarchy: value not in domain")
	// ErrLevel is returned when a generalization level is out of range.
	ErrLevel = errors.New("hierarchy: level out of range")
	// ErrEmptyDomain is returned when a hierarchy is built over no values.
	ErrEmptyDomain = errors.New("hierarchy: empty domain")
	// ErrNoHierarchy is returned by a Set lookup for an attribute that has
	// no registered hierarchy.
	ErrNoHierarchy = errors.New("hierarchy: no hierarchy registered for attribute")
)

// SuppressedValue is the conventional root value used at the top level of
// every hierarchy.
const SuppressedValue = "*"

// Hierarchy generalizes values of one attribute.
type Hierarchy interface {
	// Attribute returns the name of the attribute the hierarchy applies to.
	Attribute() string
	// MaxLevel returns the highest generalization level. Level 0 is the
	// original value, MaxLevel() is full suppression.
	MaxLevel() int
	// Generalize maps value to its generalization at the given level.
	Generalize(value string, level int) (string, error)
	// Contains reports whether value is part of the hierarchy's leaf domain.
	Contains(value string) bool
	// DomainSize returns the number of distinct leaf values.
	DomainSize() int
	// GroupSize returns how many leaf values share the same generalization
	// as value at the given level. It is the numerator of the normalized
	// certainty penalty.
	GroupSize(value string, level int) (int, error)
}

// checkLevel validates a level against a maximum.
func checkLevel(level, max int) error {
	if level < 0 || level > max {
		return fmt.Errorf("%w: %d (max %d)", ErrLevel, level, max)
	}
	return nil
}

// Set is a collection of hierarchies keyed by attribute name. It is the unit
// of configuration passed to anonymization algorithms.
type Set struct {
	byAttr map[string]Hierarchy
}

// NewSet builds a set from the given hierarchies. Duplicate attributes are an
// error.
func NewSet(hs ...Hierarchy) (*Set, error) {
	s := &Set{byAttr: make(map[string]Hierarchy, len(hs))}
	for _, h := range hs {
		if h == nil {
			return nil, errors.New("hierarchy: nil hierarchy in set")
		}
		if _, dup := s.byAttr[h.Attribute()]; dup {
			return nil, fmt.Errorf("hierarchy: duplicate hierarchy for attribute %q", h.Attribute())
		}
		s.byAttr[h.Attribute()] = h
	}
	return s, nil
}

// MustSet is like NewSet but panics on error; intended for generators and
// tests.
func MustSet(hs ...Hierarchy) *Set {
	s, err := NewSet(hs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Get returns the hierarchy for the named attribute.
func (s *Set) Get(attr string) (Hierarchy, error) {
	h, ok := s.byAttr[attr]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoHierarchy, attr)
	}
	return h, nil
}

// Has reports whether the set contains a hierarchy for attr.
func (s *Set) Has(attr string) bool {
	_, ok := s.byAttr[attr]
	return ok
}

// Attributes returns the attribute names covered by the set, in unspecified
// order.
func (s *Set) Attributes() []string {
	out := make([]string, 0, len(s.byAttr))
	for a := range s.byAttr {
		out = append(out, a)
	}
	return out
}

// MaxLevels returns the per-attribute maximum levels for the given attribute
// order. It is the shape of the full-domain generalization lattice.
func (s *Set) MaxLevels(attrs []string) ([]int, error) {
	out := make([]int, len(attrs))
	for i, a := range attrs {
		h, err := s.Get(a)
		if err != nil {
			return nil, err
		}
		out[i] = h.MaxLevel()
	}
	return out, nil
}

// Add returns a copy of the set with h added (replacing any existing
// hierarchy for the same attribute).
func (s *Set) Add(h Hierarchy) *Set {
	out := &Set{byAttr: make(map[string]Hierarchy, len(s.byAttr)+1)}
	for k, v := range s.byAttr {
		out.byAttr[k] = v
	}
	out.byAttr[h.Attribute()] = h
	return out
}
