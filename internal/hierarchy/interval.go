package hierarchy

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// IntervalHierarchy generalizes a numeric attribute into progressively wider
// intervals. Level 0 is the original value; level i (1 <= i <= len(widths))
// maps the value into the bucket of width widths[i-1] that contains it,
// rendered as "[lo-hi)"; the final level is full suppression ("*").
//
// Widths must be strictly increasing so higher levels are strictly coarser,
// and buckets at every level are anchored at the domain minimum so that any
// bucket of level i nests inside exactly one bucket of level i+1 when widths
// are integer multiples. Nesting is not required for correctness of the
// algorithms but produces cleaner releases; the constructor only enforces
// monotonicity.
type IntervalHierarchy struct {
	attr   string
	min    float64
	max    float64
	widths []float64
	// integral renders bucket bounds without decimals when true.
	integral bool
}

// NewInterval builds an interval hierarchy over the inclusive numeric domain
// [min, max] with the given strictly increasing bucket widths.
func NewInterval(attr string, min, max float64, widths []float64) (*IntervalHierarchy, error) {
	if attr == "" {
		return nil, fmt.Errorf("hierarchy: empty attribute name")
	}
	if math.IsNaN(min) || math.IsNaN(max) || min > max {
		return nil, fmt.Errorf("hierarchy: invalid domain [%v, %v] for %q", min, max, attr)
	}
	if len(widths) == 0 {
		return nil, fmt.Errorf("hierarchy: interval hierarchy for %q needs at least one width", attr)
	}
	prev := 0.0
	for i, w := range widths {
		if w <= prev {
			return nil, fmt.Errorf("hierarchy: widths must be strictly increasing, got %v at position %d", w, i)
		}
		prev = w
	}
	integral := min == math.Trunc(min) && max == math.Trunc(max)
	for _, w := range widths {
		if w != math.Trunc(w) {
			integral = false
		}
	}
	return &IntervalHierarchy{attr: attr, min: min, max: max, widths: append([]float64(nil), widths...), integral: integral}, nil
}

// MustInterval is like NewInterval but panics on error.
func MustInterval(attr string, min, max float64, widths []float64) *IntervalHierarchy {
	h, err := NewInterval(attr, min, max, widths)
	if err != nil {
		panic(err)
	}
	return h
}

// Attribute implements Hierarchy.
func (h *IntervalHierarchy) Attribute() string { return h.attr }

// MaxLevel implements Hierarchy. The top level (full suppression) is one past
// the last width.
func (h *IntervalHierarchy) MaxLevel() int { return len(h.widths) + 1 }

// DomainSize implements Hierarchy. For integral domains it is the number of
// integers in [min, max]; for continuous domains the span is used as a
// proxy (utility metrics only need ratios of group size to domain size).
func (h *IntervalHierarchy) DomainSize() int {
	if h.integral {
		return int(h.max-h.min) + 1
	}
	span := h.max - h.min
	if span < 1 {
		return 1
	}
	return int(span)
}

// Contains implements Hierarchy.
func (h *IntervalHierarchy) Contains(value string) bool {
	f, err := strconv.ParseFloat(strings.TrimSpace(value), 64)
	if err != nil {
		return false
	}
	return f >= h.min && f <= h.max
}

// bucket returns the inclusive-exclusive bounds of the level-i bucket that
// contains f. Bounds are never clamped to the domain maximum: clamping would
// make the last bucket of a coarser level narrower than a finer level's
// bucket for boundary values, breaking generalization monotonicity.
func (h *IntervalHierarchy) bucket(f float64, level int) (lo, hi float64) {
	w := h.widths[level-1]
	idx := math.Floor((f - h.min) / w)
	lo = h.min + idx*w
	hi = lo + w
	return lo, hi
}

func (h *IntervalHierarchy) format(f float64) string {
	if h.integral {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', 6, 64)
}

// FormatInterval renders an interval the way Generalize does. It is exported
// so multidimensional recoders (Mondrian) can emit ranges in the same syntax.
func FormatInterval(lo, hi float64, integral bool) string {
	fmtNum := func(f float64) string {
		if integral {
			return strconv.FormatInt(int64(f), 10)
		}
		return strconv.FormatFloat(f, 'g', 6, 64)
	}
	return "[" + fmtNum(lo) + "-" + fmtNum(hi) + ")"
}

// Generalize implements Hierarchy.
func (h *IntervalHierarchy) Generalize(value string, level int) (string, error) {
	if err := checkLevel(level, h.MaxLevel()); err != nil {
		return "", err
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(value), 64)
	if err != nil || f < h.min || f > h.max {
		return "", fmt.Errorf("%w: %q (attribute %q)", ErrUnknownValue, value, h.attr)
	}
	switch {
	case level == 0:
		return value, nil
	case level == h.MaxLevel():
		return SuppressedValue, nil
	default:
		lo, hi := h.bucket(f, level)
		return FormatInterval(lo, hi, h.integral), nil
	}
}

// GroupSize implements Hierarchy.
func (h *IntervalHierarchy) GroupSize(value string, level int) (int, error) {
	if err := checkLevel(level, h.MaxLevel()); err != nil {
		return 0, err
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(value), 64)
	if err != nil || f < h.min || f > h.max {
		return 0, fmt.Errorf("%w: %q (attribute %q)", ErrUnknownValue, value, h.attr)
	}
	switch {
	case level == 0:
		return 1, nil
	case level == h.MaxLevel():
		return h.DomainSize(), nil
	default:
		lo, hi := h.bucket(f, level)
		span := hi - lo
		n := int(span)
		if n < 1 {
			n = 1
		}
		if n > h.DomainSize() {
			n = h.DomainSize()
		}
		return n, nil
	}
}

// Min returns the lower bound of the hierarchy's domain.
func (h *IntervalHierarchy) Min() float64 { return h.min }

// Max returns the upper bound of the hierarchy's domain.
func (h *IntervalHierarchy) Max() float64 { return h.max }

// ParseInterval parses a generalized value of the form "[lo-hi)" as produced
// by Generalize and Mondrian recoding, returning its numeric bounds. Plain
// numbers parse as degenerate intervals [v, v]; the suppressed value "*"
// returns ok=false.
func ParseInterval(value string) (lo, hi float64, ok bool) {
	v := strings.TrimSpace(value)
	if v == SuppressedValue || v == "" {
		return 0, 0, false
	}
	if f, err := strconv.ParseFloat(v, 64); err == nil {
		return f, f, true
	}
	if !strings.HasPrefix(v, "[") || !strings.HasSuffix(v, ")") {
		return 0, 0, false
	}
	body := v[1 : len(v)-1]
	// Split on the last '-' that is not the leading sign of the first number.
	sep := -1
	for i := 1; i < len(body); i++ {
		if body[i] == '-' && body[i-1] != 'e' && body[i-1] != 'E' && body[i-1] != '-' {
			sep = i
			// keep searching: bounds like "[-10--5)" need the last separator
		}
	}
	if sep <= 0 {
		return 0, 0, false
	}
	loS, hiS := body[:sep], body[sep+1:]
	loF, err1 := strconv.ParseFloat(loS, 64)
	hiF, err2 := strconv.ParseFloat(hiS, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return loF, hiF, true
}
