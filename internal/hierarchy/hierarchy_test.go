package hierarchy

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleCategory(t *testing.T) *CategoryHierarchy {
	t.Helper()
	h, err := NewCategory("education", map[string][]string{
		"bachelors": {"higher", "any"},
		"masters":   {"higher", "any"},
		"doctorate": {"higher", "any"},
		"hs-grad":   {"secondary", "any"},
		"11th":      {"secondary", "any"},
	})
	if err != nil {
		t.Fatalf("NewCategory: %v", err)
	}
	return h
}

func TestCategoryBasics(t *testing.T) {
	h := sampleCategory(t)
	if h.Attribute() != "education" {
		t.Errorf("Attribute = %q", h.Attribute())
	}
	// 2 explicit levels + appended suppression level.
	if h.MaxLevel() != 3 {
		t.Errorf("MaxLevel = %d, want 3", h.MaxLevel())
	}
	if h.DomainSize() != 5 {
		t.Errorf("DomainSize = %d", h.DomainSize())
	}
	if !h.Contains("masters") || h.Contains("nope") {
		t.Error("Contains wrong")
	}
	cases := []struct {
		value string
		level int
		want  string
	}{
		{"masters", 0, "masters"},
		{"masters", 1, "higher"},
		{"masters", 2, "any"},
		{"masters", 3, "*"},
		{"11th", 1, "secondary"},
	}
	for _, c := range cases {
		got, err := h.Generalize(c.value, c.level)
		if err != nil {
			t.Fatalf("Generalize(%q,%d): %v", c.value, c.level, err)
		}
		if got != c.want {
			t.Errorf("Generalize(%q,%d) = %q, want %q", c.value, c.level, got, c.want)
		}
	}
	if _, err := h.Generalize("nope", 1); !errors.Is(err, ErrUnknownValue) {
		t.Errorf("unknown value error = %v", err)
	}
	if _, err := h.Generalize("nope", 0); !errors.Is(err, ErrUnknownValue) {
		t.Errorf("unknown value at level 0 error = %v", err)
	}
	if _, err := h.Generalize("masters", 9); !errors.Is(err, ErrLevel) {
		t.Errorf("bad level error = %v", err)
	}
}

func TestCategoryGroupSizes(t *testing.T) {
	h := sampleCategory(t)
	cases := []struct {
		value string
		level int
		want  int
	}{
		{"masters", 0, 1},
		{"masters", 1, 3}, // higher: bachelors, masters, doctorate
		{"hs-grad", 1, 2}, // secondary: hs-grad, 11th
		{"masters", 2, 5}, // any
		{"masters", 3, 5}, // *
	}
	for _, c := range cases {
		got, err := h.GroupSize(c.value, c.level)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("GroupSize(%q,%d) = %d, want %d", c.value, c.level, got, c.want)
		}
	}
	if got := h.GroupSizeOfGeneralized("higher"); got != 3 {
		t.Errorf("GroupSizeOfGeneralized(higher) = %d", got)
	}
	if got := h.GroupSizeOfGeneralized("unknown-thing"); got != 5 {
		t.Errorf("GroupSizeOfGeneralized(unknown) = %d, want domain size", got)
	}
	if got := h.LevelOf("secondary"); got != 1 {
		t.Errorf("LevelOf(secondary) = %d", got)
	}
	if got := h.LevelOf("masters"); got != 0 {
		t.Errorf("LevelOf(masters) = %d", got)
	}
	if got := h.LevelOf("nothing"); got != -1 {
		t.Errorf("LevelOf(nothing) = %d", got)
	}
}

func TestCategoryErrors(t *testing.T) {
	if _, err := NewCategory("", map[string][]string{"a": {"*"}}); err == nil {
		t.Error("empty attribute accepted")
	}
	if _, err := NewCategory("x", nil); !errors.Is(err, ErrEmptyDomain) {
		t.Errorf("empty domain error = %v", err)
	}
	_, err := NewCategory("x", map[string][]string{"a": {"g", "*"}, "b": {"*"}})
	if err == nil {
		t.Error("ragged paths accepted")
	}
	_, err = NewCategory("x", map[string][]string{"a": {"r1"}, "b": {"r2"}})
	if err == nil {
		t.Error("differing roots accepted")
	}
}

func TestCategoryRootAlreadySuppressed(t *testing.T) {
	h, err := NewCategory("sex", map[string][]string{"male": {"*"}, "female": {"*"}})
	if err != nil {
		t.Fatal(err)
	}
	if h.MaxLevel() != 1 {
		t.Errorf("MaxLevel = %d, want 1 (no extra suppression level)", h.MaxLevel())
	}
	g, _ := h.Generalize("male", 1)
	if g != "*" {
		t.Errorf("Generalize = %q", g)
	}
}

func TestFlatAndGroupedCategory(t *testing.T) {
	f, err := NewFlatCategory("sex", []string{"male", "female"})
	if err != nil {
		t.Fatal(err)
	}
	if f.MaxLevel() != 1 {
		t.Errorf("flat MaxLevel = %d", f.MaxLevel())
	}
	if _, err := NewFlatCategory("sex", nil); !errors.Is(err, ErrEmptyDomain) {
		t.Errorf("empty flat error = %v", err)
	}

	g, err := NewGroupedCategory("marital", map[string][]string{
		"married": {"married-civ", "married-af"},
		"alone":   {"never-married", "divorced", "widowed"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxLevel() != 2 {
		t.Errorf("grouped MaxLevel = %d", g.MaxLevel())
	}
	v, _ := g.Generalize("divorced", 1)
	if v != "alone" {
		t.Errorf("grouped Generalize = %q", v)
	}
	n, _ := g.GroupSize("divorced", 1)
	if n != 3 {
		t.Errorf("grouped GroupSize = %d", n)
	}
	_, err = NewGroupedCategory("bad", map[string][]string{"g1": {"x"}, "g2": {"x"}})
	if err == nil {
		t.Error("duplicate leaf across groups accepted")
	}
	if got := g.Domain(); !reflect.DeepEqual(got, []string{"divorced", "married-af", "married-civ", "never-married", "widowed"}) {
		t.Errorf("Domain = %v", got)
	}
}

func TestIntervalBasics(t *testing.T) {
	h, err := NewInterval("age", 0, 99, []float64{5, 10, 20, 50})
	if err != nil {
		t.Fatal(err)
	}
	if h.MaxLevel() != 5 {
		t.Errorf("MaxLevel = %d, want 5", h.MaxLevel())
	}
	if h.DomainSize() != 100 {
		t.Errorf("DomainSize = %d", h.DomainSize())
	}
	if h.Min() != 0 || h.Max() != 99 {
		t.Errorf("bounds = %v..%v", h.Min(), h.Max())
	}
	cases := []struct {
		value string
		level int
		want  string
	}{
		{"37", 0, "37"},
		{"37", 1, "[35-40)"},
		{"37", 2, "[30-40)"},
		{"37", 3, "[20-40)"},
		{"37", 4, "[0-50)"},
		{"37", 5, "*"},
		{"99", 1, "[95-100)"},
		{"0", 1, "[0-5)"},
	}
	for _, c := range cases {
		got, err := h.Generalize(c.value, c.level)
		if err != nil {
			t.Fatalf("Generalize(%q,%d): %v", c.value, c.level, err)
		}
		if got != c.want {
			t.Errorf("Generalize(%q,%d) = %q, want %q", c.value, c.level, got, c.want)
		}
	}
	if !h.Contains("50") || h.Contains("200") || h.Contains("abc") {
		t.Error("Contains wrong")
	}
	if _, err := h.Generalize("200", 1); !errors.Is(err, ErrUnknownValue) {
		t.Errorf("out of range error = %v", err)
	}
	if _, err := h.Generalize("37", 99); !errors.Is(err, ErrLevel) {
		t.Errorf("bad level error = %v", err)
	}
	if _, err := h.GroupSize("abc", 1); !errors.Is(err, ErrUnknownValue) {
		t.Errorf("GroupSize unknown error = %v", err)
	}
	if _, err := h.GroupSize("10", -1); !errors.Is(err, ErrLevel) {
		t.Errorf("GroupSize bad level error = %v", err)
	}
}

func TestIntervalGroupSize(t *testing.T) {
	h := MustInterval("age", 0, 99, []float64{5, 10, 20, 50})
	cases := []struct {
		value string
		level int
		want  int
	}{
		{"37", 0, 1},
		{"37", 1, 5},
		{"37", 2, 10},
		{"37", 4, 50},
		{"37", 5, 100},
	}
	for _, c := range cases {
		got, err := h.GroupSize(c.value, c.level)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("GroupSize(%q,%d) = %d, want %d", c.value, c.level, got, c.want)
		}
	}
}

func TestIntervalErrors(t *testing.T) {
	if _, err := NewInterval("", 0, 10, []float64{1}); err == nil {
		t.Error("empty attribute accepted")
	}
	if _, err := NewInterval("x", 10, 0, []float64{1}); err == nil {
		t.Error("inverted domain accepted")
	}
	if _, err := NewInterval("x", 0, 10, nil); err == nil {
		t.Error("no widths accepted")
	}
	if _, err := NewInterval("x", 0, 10, []float64{5, 5}); err == nil {
		t.Error("non-increasing widths accepted")
	}
}

func TestParseInterval(t *testing.T) {
	cases := []struct {
		in     string
		lo, hi float64
		ok     bool
	}{
		{"[20-30)", 20, 30, true},
		{"[0-5)", 0, 5, true},
		{"42", 42, 42, true},
		{"*", 0, 0, false},
		{"", 0, 0, false},
		{"garbage", 0, 0, false},
		{"[a-b)", 0, 0, false},
		{"[-10--5)", -10, -5, true},
	}
	for _, c := range cases {
		lo, hi, ok := ParseInterval(c.in)
		if ok != c.ok || (ok && (lo != c.lo || hi != c.hi)) {
			t.Errorf("ParseInterval(%q) = %v,%v,%v want %v,%v,%v", c.in, lo, hi, ok, c.lo, c.hi, c.ok)
		}
	}
}

func TestIntervalGeneralizeParseRoundTrip(t *testing.T) {
	h := MustInterval("age", 0, 99, []float64{5, 10, 25})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		v := rng.Intn(100)
		level := 1 + rng.Intn(3)
		g, err := h.Generalize(fmt.Sprint(v), level)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi, ok := ParseInterval(g)
		if !ok {
			t.Fatalf("ParseInterval(%q) failed", g)
		}
		if float64(v) < lo || float64(v) >= hi {
			t.Errorf("value %d not inside its own interval %q", v, g)
		}
	}
}

func TestPrefixCategory(t *testing.T) {
	h, err := NewPrefixCategory("zip", []string{"30301", "30302", "30455", "31200"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.MaxLevel() != 4 { // 3 mask levels + suppression
		t.Errorf("MaxLevel = %d", h.MaxLevel())
	}
	g, _ := h.Generalize("30301", 1)
	if g != "3030*" {
		t.Errorf("level1 = %q", g)
	}
	g, _ = h.Generalize("30301", 3)
	if g != "30***" {
		t.Errorf("level3 = %q", g)
	}
	g, _ = h.Generalize("30301", 4)
	if g != "*" {
		t.Errorf("level4 = %q", g)
	}
	n, _ := h.GroupSize("30301", 2)
	if n != 2 { // 303** covers 30301 and 30302 (30455 maps to 304**)
		t.Errorf("GroupSize level2 = %d", n)
	}
	n, _ = h.GroupSize("30301", 3)
	if n != 3 { // 30*** covers 30301, 30302, 30455
		t.Errorf("GroupSize level3 = %d", n)
	}
	if _, err := NewPrefixCategory("zip", []string{"1", "22"}, 0); err == nil {
		t.Error("mixed-width domain accepted")
	}
	if _, err := NewPrefixCategory("zip", nil, 0); !errors.Is(err, ErrEmptyDomain) {
		t.Errorf("empty domain error = %v", err)
	}
	// maskLevels <= 0 defaults to full width.
	h2, err := NewPrefixCategory("zip", []string{"123", "456"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h2.MaxLevel() != 4 {
		t.Errorf("default mask levels MaxLevel = %d", h2.MaxLevel())
	}
}

func TestIntervalFromDomain(t *testing.T) {
	h, err := NewIntervalFromDomain("hours", 1, 99, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.MaxLevel() != 5 {
		t.Errorf("MaxLevel = %d", h.MaxLevel())
	}
	if _, err := NewIntervalFromDomain("hours", 1, 99, 0); err == nil {
		t.Error("non-positive levels accepted")
	}
	// Degenerate domain still works.
	if _, err := NewIntervalFromDomain("c", 5, 5, 3); err != nil {
		t.Errorf("degenerate domain: %v", err)
	}
}

func TestSet(t *testing.T) {
	age := MustInterval("age", 0, 99, []float64{10, 20})
	sex, _ := NewFlatCategory("sex", []string{"male", "female"})
	s, err := NewSet(age, sex)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Has("age") || s.Has("zip") {
		t.Error("Has wrong")
	}
	if _, err := s.Get("zip"); !errors.Is(err, ErrNoHierarchy) {
		t.Errorf("Get(zip) error = %v", err)
	}
	h, err := s.Get("age")
	if err != nil || h.Attribute() != "age" {
		t.Errorf("Get(age) = %v, %v", h, err)
	}
	if got := len(s.Attributes()); got != 2 {
		t.Errorf("Attributes len = %d", got)
	}
	levels, err := s.MaxLevels([]string{"age", "sex"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(levels, []int{3, 1}) {
		t.Errorf("MaxLevels = %v", levels)
	}
	if _, err := s.MaxLevels([]string{"zip"}); err == nil {
		t.Error("MaxLevels with missing attribute succeeded")
	}
	s2 := s.Add(MustInterval("hours", 0, 99, []float64{8}))
	if !s2.Has("hours") || s.Has("hours") {
		t.Error("Add should not mutate the original set")
	}
	if _, err := NewSet(age, age); err == nil {
		t.Error("duplicate hierarchies accepted")
	}
	if _, err := NewSet(nil); err == nil {
		t.Error("nil hierarchy accepted")
	}
}

func TestValidate(t *testing.T) {
	sex, _ := NewFlatCategory("sex", []string{"male", "female"})
	missing := Validate(sex, []string{"male", "other", "female"})
	if !reflect.DeepEqual(missing, []string{"other"}) {
		t.Errorf("Validate = %v", missing)
	}
	if got := Validate(sex, []string{"male"}); got != nil {
		t.Errorf("Validate full coverage = %v", got)
	}
}

// Property: generalization is monotone — the group size never shrinks as the
// level increases, and every value's generalization at the max level is "*".
func TestGeneralizationMonotoneProperty(t *testing.T) {
	h := sampleCategory(t)
	values := h.Domain()
	f := func(idx uint8) bool {
		v := values[int(idx)%len(values)]
		prev := 0
		for l := 0; l <= h.MaxLevel(); l++ {
			n, err := h.GroupSize(v, l)
			if err != nil || n < prev {
				return false
			}
			prev = n
		}
		top, err := h.Generalize(v, h.MaxLevel())
		return err == nil && top == SuppressedValue
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: interval generalization always contains the original value and
// widths grow with level.
func TestIntervalContainmentProperty(t *testing.T) {
	h := MustInterval("v", 0, 1000, []float64{7, 21, 100})
	f := func(raw uint16) bool {
		v := int(raw) % 1001
		prevSpan := 0.0
		for l := 1; l <= 3; l++ {
			g, err := h.Generalize(fmt.Sprint(v), l)
			if err != nil {
				return false
			}
			lo, hi, ok := ParseInterval(g)
			if !ok || float64(v) < lo || float64(v) >= hi {
				return false
			}
			if hi-lo < prevSpan {
				return false
			}
			prevSpan = hi - lo
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
