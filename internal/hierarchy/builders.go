package hierarchy

import (
	"fmt"
	"strings"
)

// NewPrefixCategory builds the classic zip-code-style hierarchy over a
// categorical domain of fixed-width strings: each level masks one more
// trailing character with '*', and the final level is full suppression.
// For example with width 5: "30301" -> "3030*" -> "303**" -> "30***" ->
// "3****" -> "*".
//
// maskLevels limits how many characters are masked before jumping to full
// suppression; pass the string width to mask everything one character at a
// time.
func NewPrefixCategory(attr string, domain []string, maskLevels int) (*CategoryHierarchy, error) {
	if len(domain) == 0 {
		return nil, ErrEmptyDomain
	}
	width := len(domain[0])
	for _, v := range domain {
		if len(v) != width {
			return nil, fmt.Errorf("hierarchy: prefix hierarchy requires fixed-width values; %q has width %d, want %d", v, len(v), width)
		}
	}
	if maskLevels <= 0 || maskLevels > width {
		maskLevels = width
	}
	paths := make(map[string][]string, len(domain))
	for _, v := range domain {
		p := make([]string, 0, maskLevels+1)
		for l := 1; l <= maskLevels; l++ {
			p = append(p, v[:width-l]+strings.Repeat("*", l))
		}
		p = append(p, SuppressedValue)
		paths[v] = p
	}
	return NewCategory(attr, paths)
}

// NewIntervalFromDomain builds an interval hierarchy whose level widths are
// derived from the domain span: the first level groups values into `levels`
// roughly equal buckets doubling in width at each subsequent level. It is a
// convenience for attributes where no domain-specific widths are known.
func NewIntervalFromDomain(attr string, min, max float64, levels int) (*IntervalHierarchy, error) {
	if levels <= 0 {
		return nil, fmt.Errorf("hierarchy: levels must be positive, got %d", levels)
	}
	span := max - min
	if span <= 0 {
		span = 1
	}
	widths := make([]float64, levels)
	w := span / float64(int(1)<<uint(levels-1))
	if w < 1 {
		w = 1
	}
	for i := 0; i < levels; i++ {
		widths[i] = w
		w *= 2
	}
	// Enforce strict monotonicity in case rounding collapsed widths.
	for i := 1; i < len(widths); i++ {
		if widths[i] <= widths[i-1] {
			widths[i] = widths[i-1] * 2
		}
	}
	return NewInterval(attr, min, max, widths)
}

// Validate checks that every value of the given column domain is covered by
// the hierarchy, returning the uncovered values (empty when fully covered).
func Validate(h Hierarchy, domain []string) []string {
	var missing []string
	for _, v := range domain {
		if !h.Contains(v) {
			missing = append(missing, v)
		}
	}
	return missing
}
