package hierarchy

import (
	"fmt"
	"sort"
)

// CategoryHierarchy is a taxonomy-based hierarchy for categorical attributes.
// It is defined by one generalization path per leaf value: the value itself at
// level 0 followed by its ancestors up to the root. All paths must have the
// same length so the hierarchy forms a balanced tree, which is what
// full-domain recoding requires.
type CategoryHierarchy struct {
	attr   string
	levels int // number of generalization steps above level 0
	// paths[value][l] is the generalization of value at level l+1.
	paths map[string][]string
	// groupSizes[level][generalizedValue] counts leaves under that value.
	groupSizes []map[string]int
}

// NewCategory builds a categorical hierarchy from per-value generalization
// paths. Each path lists the ancestors of the value from level 1 upward; all
// paths must have equal length and end in a common root. A final suppression
// level mapping everything to "*" is appended automatically when the supplied
// root is not already "*".
func NewCategory(attr string, paths map[string][]string) (*CategoryHierarchy, error) {
	if attr == "" {
		return nil, fmt.Errorf("hierarchy: empty attribute name")
	}
	if len(paths) == 0 {
		return nil, ErrEmptyDomain
	}
	depth := -1
	root := ""
	for v, p := range paths {
		if depth == -1 {
			depth = len(p)
			if depth > 0 {
				root = p[depth-1]
			}
		}
		if len(p) != depth {
			return nil, fmt.Errorf("hierarchy: value %q has path length %d, want %d", v, len(p), depth)
		}
		if depth > 0 && p[depth-1] != root {
			return nil, fmt.Errorf("hierarchy: value %q has root %q, want %q", v, p[depth-1], root)
		}
	}
	h := &CategoryHierarchy{attr: attr, paths: make(map[string][]string, len(paths))}
	needSuppression := root != SuppressedValue
	for v, p := range paths {
		cp := make([]string, 0, depth+1)
		cp = append(cp, p...)
		if needSuppression {
			cp = append(cp, SuppressedValue)
		}
		h.paths[v] = cp
	}
	h.levels = depth
	if needSuppression {
		h.levels++
	}
	h.buildGroupSizes()
	return h, nil
}

// MustCategory is like NewCategory but panics on error.
func MustCategory(attr string, paths map[string][]string) *CategoryHierarchy {
	h, err := NewCategory(attr, paths)
	if err != nil {
		panic(err)
	}
	return h
}

// NewFlatCategory builds a two-level hierarchy in which every value
// generalizes directly to "*". It is the default for categorical attributes
// without a domain taxonomy.
func NewFlatCategory(attr string, domain []string) (*CategoryHierarchy, error) {
	if len(domain) == 0 {
		return nil, ErrEmptyDomain
	}
	paths := make(map[string][]string, len(domain))
	for _, v := range domain {
		paths[v] = []string{SuppressedValue}
	}
	return NewCategory(attr, paths)
}

// NewGroupedCategory builds a three-level hierarchy from named groups of leaf
// values: value -> group -> "*". Every leaf must appear in exactly one group.
func NewGroupedCategory(attr string, groups map[string][]string) (*CategoryHierarchy, error) {
	paths := make(map[string][]string)
	for group, leaves := range groups {
		for _, v := range leaves {
			if _, dup := paths[v]; dup {
				return nil, fmt.Errorf("hierarchy: value %q appears in more than one group", v)
			}
			paths[v] = []string{group, SuppressedValue}
		}
	}
	return NewCategory(attr, paths)
}

func (h *CategoryHierarchy) buildGroupSizes() {
	h.groupSizes = make([]map[string]int, h.levels+1)
	for l := 0; l <= h.levels; l++ {
		h.groupSizes[l] = make(map[string]int)
	}
	for v, p := range h.paths {
		h.groupSizes[0][v]++
		for l := 1; l <= h.levels; l++ {
			h.groupSizes[l][p[l-1]]++
		}
	}
}

// Attribute implements Hierarchy.
func (h *CategoryHierarchy) Attribute() string { return h.attr }

// MaxLevel implements Hierarchy.
func (h *CategoryHierarchy) MaxLevel() int { return h.levels }

// DomainSize implements Hierarchy.
func (h *CategoryHierarchy) DomainSize() int { return len(h.paths) }

// Contains implements Hierarchy.
func (h *CategoryHierarchy) Contains(value string) bool {
	_, ok := h.paths[value]
	return ok
}

// Domain returns the sorted leaf domain of the hierarchy.
func (h *CategoryHierarchy) Domain() []string {
	out := make([]string, 0, len(h.paths))
	for v := range h.paths {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Generalize implements Hierarchy.
func (h *CategoryHierarchy) Generalize(value string, level int) (string, error) {
	if err := checkLevel(level, h.levels); err != nil {
		return "", err
	}
	if level == 0 {
		if !h.Contains(value) {
			return "", fmt.Errorf("%w: %q (attribute %q)", ErrUnknownValue, value, h.attr)
		}
		return value, nil
	}
	p, ok := h.paths[value]
	if !ok {
		return "", fmt.Errorf("%w: %q (attribute %q)", ErrUnknownValue, value, h.attr)
	}
	return p[level-1], nil
}

// GroupSize implements Hierarchy.
func (h *CategoryHierarchy) GroupSize(value string, level int) (int, error) {
	g, err := h.Generalize(value, level)
	if err != nil {
		return 0, err
	}
	return h.groupSizes[level][g], nil
}

// LevelOf returns the lowest level at which the given generalized value
// appears, or -1 if it never appears. It is used to reverse-map released
// values back onto the hierarchy (for example when computing ILoss of a
// released table).
func (h *CategoryHierarchy) LevelOf(generalized string) int {
	for l := 0; l <= h.levels; l++ {
		if _, ok := h.groupSizes[l][generalized]; ok {
			return l
		}
	}
	return -1
}

// GroupSizeOfGeneralized returns the number of leaves covered by an already
// generalized value, searching all levels. Unknown values count as covering
// the whole domain (they are treated as suppressed).
func (h *CategoryHierarchy) GroupSizeOfGeneralized(generalized string) int {
	for l := 0; l <= h.levels; l++ {
		if n, ok := h.groupSizes[l][generalized]; ok {
			return n
		}
	}
	return h.DomainSize()
}
