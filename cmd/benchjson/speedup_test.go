package main

import (
	"strings"
	"testing"
)

func TestBaseName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkDataflyWorkersMax-4": "BenchmarkDataflyWorkersMax",
		"BenchmarkDataflyWorkersMax":   "BenchmarkDataflyWorkersMax", // GOMAXPROCS=1: no suffix
		"BenchmarkTopDown-2":           "BenchmarkTopDown",
		"BenchmarkOdd-Name":            "BenchmarkOdd-Name", // non-numeric suffix kept
	}
	for in, want := range cases {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSpeedupJoinsSweepRecords(t *testing.T) {
	dir := t.TempDir()
	// GOMAXPROCS=1 names carry no -P suffix; the join must still match.
	p1 := writeReport(t, dir, "p1.json", &Report{MaxProcs: 1, Benchmarks: []Benchmark{
		bench("BenchmarkMondrianParallel", 4000, 10),
		bench("BenchmarkDataflyWorkersMax", 2000, 10),
	}})
	p4 := writeReport(t, dir, "p4.json", &Report{MaxProcs: 4, Benchmarks: []Benchmark{
		bench("BenchmarkMondrianParallel-4", 1000, 10),
		bench("BenchmarkDataflyWorkersMax-4", 1000, 10),
	}})

	var out strings.Builder
	code, err := runSpeedup([]string{p1, p4}, &out)
	if err != nil || code != 0 {
		t.Fatalf("runSpeedup: code %d, err %v\n%s", code, err, out.String())
	}
	text := out.String()
	// 4000 ns/op at one core vs 1000 at four: 4.00x speedup, 1.00/core.
	if !strings.Contains(text, "BenchmarkMondrianParallel") ||
		!strings.Contains(text, "4.00x speedup") || !strings.Contains(text, "1.00/core") {
		t.Errorf("missing scaling line:\n%s", text)
	}
	// 2000 vs 1000: 2.00x at four cores, 0.50/core efficiency.
	if !strings.Contains(text, "2.00x speedup") || !strings.Contains(text, "0.50/core") {
		t.Errorf("missing efficiency line:\n%s", text)
	}
}

func TestSpeedupArgumentErrors(t *testing.T) {
	var out strings.Builder
	if _, err := runSpeedup([]string{"only-one.json"}, &out); err == nil {
		t.Error("single file accepted, want error")
	}
	if _, err := runSpeedup([]string{"missing-a.json", "missing-b.json"}, &out); err == nil {
		t.Error("missing files accepted, want error")
	}
}
