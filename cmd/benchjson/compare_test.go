package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, rep *Report) string {
	t.Helper()
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func bench(name string, ns, allocs float64) Benchmark {
	return Benchmark{
		Name:       name,
		Iterations: 100,
		Metrics:    map[string]float64{"ns/op": ns, "allocs/op": allocs},
	}
}

func TestCompareReportsDeltas(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", &Report{Benchmarks: []Benchmark{
		bench("BenchmarkStable-4", 1000, 50),
		bench("BenchmarkFaster-4", 2000, 80),
		bench("BenchmarkRemoved-4", 10, 1),
	}})
	newPath := writeReport(t, dir, "new.json", &Report{Benchmarks: []Benchmark{
		bench("BenchmarkStable-4", 1040, 50), // +4%: inside the default threshold
		bench("BenchmarkFaster-4", 1000, 40), // improvement
		bench("BenchmarkAdded-4", 5, 2),      // no baseline
	}})

	var out strings.Builder
	code, err := runCompare([]string{oldPath, newPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0 (no regression beyond 10%%):\n%s", code, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"BenchmarkStable-4", "+4.0%",
		"BenchmarkFaster-4", "-50.0%",
		"new benchmark (no baseline)",
		"removed (present only in baseline)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("compare output missing %q:\n%s", want, text)
		}
	}
}

func TestCompareFlagsRegressionBeyondThreshold(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", &Report{Benchmarks: []Benchmark{
		bench("BenchmarkHot-4", 1000, 100),
	}})
	newPath := writeReport(t, dir, "new.json", &Report{Benchmarks: []Benchmark{
		bench("BenchmarkHot-4", 1300, 100), // +30% ns/op
	}})

	var out strings.Builder
	code, err := runCompare([]string{oldPath, newPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "<< regression") {
		t.Errorf("output does not flag the regression:\n%s", out.String())
	}

	// A looser threshold accepts the same delta.
	out.Reset()
	code, err = runCompare([]string{"-threshold", "0.5", oldPath, newPath}, &out)
	if err != nil || code != 0 {
		t.Errorf("threshold 0.5: code = %d, err = %v:\n%s", code, err, out.String())
	}
}

func TestCompareArgumentErrors(t *testing.T) {
	var out strings.Builder
	if _, err := runCompare([]string{"only-one.json"}, &out); err == nil {
		t.Error("missing file argument not rejected")
	}
	if _, err := runCompare([]string{"-threshold", "-1", "a.json", "b.json"}, &out); err == nil {
		t.Error("negative threshold not rejected")
	}
	if _, err := runCompare([]string{"/does/not/exist.json", "/nor/this.json"}, &out); err == nil {
		t.Error("unreadable files not rejected")
	}
}
