package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: github.com/ppdp/ppdp
BenchmarkMondrianK10-4   	     171	   6912345 ns/op	 2173554 B/op	   12687 allocs/op
BenchmarkE2RuntimeVsN-4  	       2	 512345678 ns/op	21.00 result-rows	 1234 B/op	   99 allocs/op
PASS
ok  	github.com/ppdp/ppdp	3.210s
`
	rep, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkMondrianK10-4" || b.Iterations != 171 {
		t.Errorf("benchmark[0] = %+v", b)
	}
	if b.Metrics["ns/op"] != 6912345 || b.Metrics["B/op"] != 2173554 || b.Metrics["allocs/op"] != 12687 {
		t.Errorf("metrics = %v", b.Metrics)
	}
	// Custom b.ReportMetric units survive.
	if rep.Benchmarks[1].Metrics["result-rows"] != 21 {
		t.Errorf("custom metric lost: %v", rep.Benchmarks[1].Metrics)
	}
	if rep.Go == "" || rep.MaxProcs < 1 {
		t.Errorf("environment fields missing: %+v", rep)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	rep, err := parse(strings.NewReader("Benchmark\nBenchmarkX abc 1 ns/op\nnot a line\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Errorf("garbage parsed as benchmarks: %+v", rep.Benchmarks)
	}
}
