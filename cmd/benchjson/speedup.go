package main

import (
	"flag"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// runSpeedup implements `benchjson speedup FILE.json...` over records from a
// GOMAXPROCS sweep (see scripts/bench_cores.sh): it joins the files on the
// benchmark base name — the `-P` GOMAXPROCS suffix stripped, since a run at
// GOMAXPROCS=1 carries no suffix at all — and prints each benchmark's ns/op
// at every core count together with its speedup and per-core efficiency
// relative to the fewest-cores record. Missing benchmarks are skipped per
// file, so partial sweeps (a host with fewer cores than the sweep asks for)
// still report.
func runSpeedup(args []string, w io.Writer) (int, error) {
	fs := flag.NewFlagSet("benchjson speedup", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if fs.NArg() < 2 {
		return 0, fmt.Errorf("speedup: want two or more sweep JSON files, got %d", fs.NArg())
	}
	type sweepRun struct {
		procs int
		ns    map[string]float64
	}
	runs := make([]sweepRun, 0, fs.NArg())
	for _, path := range fs.Args() {
		rep, err := readReport(path)
		if err != nil {
			return 0, err
		}
		run := sweepRun{procs: rep.MaxProcs, ns: make(map[string]float64, len(rep.Benchmarks))}
		for _, b := range rep.Benchmarks {
			if v, ok := b.Metrics["ns/op"]; ok {
				run.ns[baseName(b.Name)] = v
			}
		}
		runs = append(runs, run)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].procs < runs[j].procs })

	base := runs[0]
	names := make([]string, 0, len(base.ns))
	for name := range base.ns {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintln(w, name)
		for _, run := range runs {
			v, ok := run.ns[name]
			if !ok {
				continue
			}
			line := fmt.Sprintf("  GOMAXPROCS=%-2d %14.0f ns/op", run.procs, v)
			if run.procs != base.procs && v > 0 {
				speedup := base.ns[name] / v
				line += fmt.Sprintf("  %5.2fx speedup  %4.2f/core", speedup, speedup/float64(run.procs))
			}
			fmt.Fprintln(w, line)
		}
	}
	return 0, nil
}

// baseName strips the `-P` GOMAXPROCS suffix go test appends to benchmark
// names (absent when GOMAXPROCS=1), so sweep records join on one key.
func baseName(name string) string {
	i := strings.LastIndex(name, "-")
	if i <= 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
