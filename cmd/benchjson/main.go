// Command benchjson converts `go test -bench` text output into a JSON
// record, and diffs two such records. `make bench` pipes the repository
// benchmarks through it to write BENCH_PR*.json files, so the performance
// trajectory of the hot paths is recorded per PR in a machine-readable form;
// the CI bench job then reports regressions with compare (non-gating).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson > BENCH.json
//	benchjson compare [-threshold 0.10] OLD.json NEW.json
//	benchjson speedup P1.json P2.json P4.json
//
// Non-benchmark lines (package headers, PASS/ok) are ignored; every metric
// pair a benchmark reports (ns/op, B/op, allocs/op, custom b.ReportMetric
// units) is preserved under its unit name.
//
// compare prints the per-benchmark ns/op and allocs/op deltas of the
// benchmarks present in both files and exits with status 1 when any metric
// regressed by more than the threshold (a fraction: 0.10 = +10%), so a CI
// job can surface regressions while staying non-gating via
// continue-on-error.
//
// speedup joins the records of a GOMAXPROCS sweep (scripts/bench_cores.sh)
// on the benchmark base name and prints each benchmark's scaling profile:
// ns/op per core count, speedup and per-core efficiency against the
// fewest-cores record.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name including the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps a unit (e.g. "ns/op") to its value.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the top-level JSON document.
type Report struct {
	// Go is the toolchain that produced the numbers.
	Go string `json:"go"`
	// MaxProcs is runtime.GOMAXPROCS at conversion time — benchmarks ran in
	// the same environment, so it records the parallelism available.
	MaxProcs int `json:"maxprocs"`
	// Benchmarks lists every parsed result in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 && (os.Args[1] == "compare" || os.Args[1] == "speedup") {
		run := runCompare
		if os.Args[1] == "speedup" {
			run = runSpeedup
		}
		code, err := run(os.Args[2:], os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		os.Exit(code)
	}
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` output and extracts the benchmark lines.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Go: runtime.Version(), MaxProcs: runtime.GOMAXPROCS(0), Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64, (len(fields)-2)/2)}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}
