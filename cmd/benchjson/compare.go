package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

// comparedMetrics are the units the compare subcommand diffs; both are
// smaller-is-better, so a positive delta is a regression.
var comparedMetrics = []string{"ns/op", "allocs/op"}

// runCompare implements `benchjson compare [-threshold F] OLD.json NEW.json`.
// It prints one line per benchmark/metric pair present in both files and
// returns exit code 1 when any delta exceeds the threshold fraction (0 on a
// clean comparison; hard errors surface as error).
func runCompare(args []string, w io.Writer) (int, error) {
	fs := flag.NewFlagSet("benchjson compare", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0.10,
		"regression threshold as a fraction (0.10 flags metrics more than 10% worse)")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if fs.NArg() != 2 {
		return 0, fmt.Errorf("compare: want OLD.json NEW.json, got %d arguments", fs.NArg())
	}
	if *threshold < 0 {
		return 0, fmt.Errorf("compare: threshold %v must be non-negative", *threshold)
	}
	oldRep, err := readReport(fs.Arg(0))
	if err != nil {
		return 0, err
	}
	newRep, err := readReport(fs.Arg(1))
	if err != nil {
		return 0, err
	}
	regressions := compareReports(oldRep, newRep, *threshold, w)
	if regressions > 0 {
		fmt.Fprintf(w, "%d metric(s) regressed beyond %+.0f%%\n", regressions, *threshold*100)
		return 1, nil
	}
	return 0, nil
}

// readReport loads one benchjson output file.
func readReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// compareReports prints the delta table for the benchmarks present in both
// reports (in the new report's order) and returns how many metrics regressed
// beyond the threshold. Benchmarks present on only one side are announced
// but never counted as regressions — a renamed or added benchmark must not
// fail the comparison.
func compareReports(oldRep, newRep *Report, threshold float64, w io.Writer) int {
	oldBy := make(map[string]Benchmark, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}
	seen := make(map[string]bool, len(newRep.Benchmarks))
	regressions := 0
	for _, nb := range newRep.Benchmarks {
		seen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(w, "%-40s new benchmark (no baseline)\n", nb.Name)
			continue
		}
		for _, metric := range comparedMetrics {
			oldV, okOld := ob.Metrics[metric]
			newV, okNew := nb.Metrics[metric]
			if !okOld || !okNew || oldV == 0 {
				continue
			}
			delta := (newV - oldV) / oldV
			mark := ""
			if delta > threshold {
				mark = "  << regression"
				regressions++
			}
			fmt.Fprintf(w, "%-40s %-10s %14.1f -> %14.1f  %+7.1f%%%s\n",
				nb.Name, metric, oldV, newV, delta*100, mark)
		}
	}
	for _, ob := range oldRep.Benchmarks {
		if !seen[ob.Name] {
			fmt.Fprintf(w, "%-40s removed (present only in baseline)\n", ob.Name)
		}
	}
	return regressions
}
