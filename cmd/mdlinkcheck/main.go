// Command mdlinkcheck verifies that the relative links in markdown files
// resolve to files that exist in the repository, so documentation rot is
// caught by CI instead of by readers. It checks inline links ([text](target))
// and bare reference definitions ([label]: target); external links (anything
// with a URL scheme) and pure in-page anchors are skipped because offline CI
// cannot and need not resolve them.
//
// Usage:
//
//	mdlinkcheck [file.md | dir]...
//
// Directories are walked recursively for *.md files. With no arguments it
// checks README.md and docs/. The exit status is 1 when any link is broken.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	targets := os.Args[1:]
	if len(targets) == 0 {
		targets = []string{"README.md", "docs"}
	}
	broken, err := check(targets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdlinkcheck:", err)
		os.Exit(2)
	}
	for _, b := range broken {
		fmt.Fprintln(os.Stderr, b)
	}
	if len(broken) > 0 {
		fmt.Fprintf(os.Stderr, "mdlinkcheck: %d broken link(s)\n", len(broken))
		os.Exit(1)
	}
}

// check expands the targets into markdown files and returns one message per
// broken link.
func check(targets []string) ([]string, error) {
	files, err := collectFiles(targets)
	if err != nil {
		return nil, err
	}
	var broken []string
	for _, f := range files {
		b, err := checkFile(f)
		if err != nil {
			return nil, err
		}
		broken = append(broken, b...)
	}
	return broken, nil
}

// collectFiles resolves the given files and directories into a list of
// markdown files. Missing targets are an error: a CI invocation that names a
// file that no longer exists should fail loudly, not pass vacuously.
func collectFiles(targets []string) ([]string, error) {
	var files []string
	for _, t := range targets {
		info, err := os.Stat(t)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, t)
			continue
		}
		err = filepath.WalkDir(t, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(strings.ToLower(d.Name()), ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return files, nil
}

// linkPattern matches inline markdown links and images; the first group is
// the target. Optional titles ([t](file "title")) are excluded from the
// target.
var linkPattern = regexp.MustCompile(`!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+"[^"]*")?\s*\)`)

// refPattern matches reference-style definitions at line start:
// [label]: target
// The target class excludes '>' so angle-bracketed targets ([l]: <file.md>)
// capture the path, not the closing bracket.
var refPattern = regexp.MustCompile(`(?m)^\s*\[[^\]]+\]:\s+<?([^>\s]+)>?`)

// checkFile returns one message per broken relative link in the file.
func checkFile(path string) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	var broken []string
	seen := map[string]bool{}
	for _, m := range append(linkPattern.FindAllStringSubmatch(string(raw), -1),
		refPattern.FindAllStringSubmatch(string(raw), -1)...) {
		target := m[1]
		if seen[target] {
			continue
		}
		seen[target] = true
		if skipTarget(target) {
			continue
		}
		// Drop the in-page fragment; anchor validity is out of scope.
		file := target
		if i := strings.IndexByte(file, '#'); i >= 0 {
			file = file[:i]
		}
		if file == "" {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, file)); err != nil {
			broken = append(broken, fmt.Sprintf("%s: broken link %q", path, target))
		}
	}
	return broken, nil
}

// skipTarget reports whether a link target is external (scheme-qualified) or
// a pure anchor and therefore not checked.
func skipTarget(target string) bool {
	if strings.HasPrefix(target, "#") {
		return true
	}
	// A scheme like https:, mailto:, tel: — a colon before any slash.
	if i := strings.IndexAny(target, ":/"); i >= 0 && target[i] == ':' {
		return true
	}
	return false
}
