package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCheckFileSyntheticCases(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "exists.md"), []byte("# hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "sub", "deep.md"), []byte("# deep"), 0o644); err != nil {
		t.Fatal(err)
	}
	doc := `# Test
[good](exists.md) and [deep](sub/deep.md) and [anchor](exists.md#section)
[external](https://example.com/x.md) [mail](mailto:a@b.c) [pure anchor](#here)
![image](missing.png)
[broken](nope.md) [broken twice](nope.md)
[ref link][r1]

[r1]: sub/deep.md
[r2]: gone.md
[r3]: <sub/deep.md>
`
	main := filepath.Join(dir, "main.md")
	if err := os.WriteFile(main, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	broken, err := checkFile(main)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly three distinct broken targets: missing.png, nope.md (deduped),
	// gone.md.
	if len(broken) != 3 {
		t.Fatalf("broken = %v, want 3 entries", broken)
	}
	joined := strings.Join(broken, "\n")
	for _, want := range []string{"missing.png", "nope.md", "gone.md"} {
		if !strings.Contains(joined, want) {
			t.Errorf("broken output misses %q: %v", want, broken)
		}
	}
	for _, unwanted := range []string{"exists.md", "deep.md", "example.com"} {
		if strings.Contains(joined, unwanted) {
			t.Errorf("false positive on %q: %v", unwanted, broken)
		}
	}
}

func TestCollectFiles(t *testing.T) {
	dir := t.TempDir()
	for _, f := range []string{"a.md", "b.MD", "c.txt", "sub/d.md"} {
		path := filepath.Join(dir, f)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	files, err := collectFiles([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("collectFiles = %v, want the 3 markdown files", files)
	}
	if _, err := collectFiles([]string{filepath.Join(dir, "missing.md")}); err == nil {
		t.Error("missing target did not error")
	}
}

// TestRepositoryDocs gates the repository's own documentation: every
// relative link in the top-level markdown files and docs/ must resolve.
// This is the tier-1 hook behind the CI link-check step.
func TestRepositoryDocs(t *testing.T) {
	root := filepath.Join("..", "..")
	var targets []string
	for _, name := range []string{"README.md", "CHANGES.md", "ROADMAP.md", "docs"} {
		if _, err := os.Stat(filepath.Join(root, name)); err == nil {
			targets = append(targets, filepath.Join(root, name))
		}
	}
	if len(targets) == 0 {
		t.Skip("no documentation found (running outside the repository?)")
	}
	broken, err := check(targets)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range broken {
		t.Error(b)
	}
}
