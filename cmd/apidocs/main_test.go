package main

import (
	"bytes"
	"os"
	"testing"
)

// TestAPIDocsCurrent is the in-tree staleness gate: the committed
// docs/API.md must be byte-identical to what the generator produces, the
// same check `make api-docs-check` runs in CI.
func TestAPIDocsCurrent(t *testing.T) {
	var buf bytes.Buffer
	if err := generate(&buf); err != nil {
		t.Fatal(err)
	}
	committed, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("read docs/API.md: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), committed) {
		t.Error("docs/API.md is stale: run `make api-docs` and commit the result")
	}
}

// TestGeneratorDeterministic guards the byte-for-byte diff the staleness
// gate relies on.
func TestGeneratorDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := generate(&a); err != nil {
		t.Fatal(err)
	}
	if err := generate(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("generator output is not deterministic")
	}
}
