// Command ppdp is the command-line interface of the privacy-preserving data
// publishing library. It can generate the synthetic benchmark datasets,
// anonymize a CSV table with any of the seven implemented algorithms, assess
// re-identification and attribute-disclosure risk of a release, evaluate
// utility metrics, run the survey-reproduction experiments, and serve the
// whole pipeline as a long-running HTTP service.
//
// Usage:
//
//	ppdp generate  -dataset census|hospital -rows N -seed S -out file.csv
//	ppdp anonymize -dataset census|hospital -in file.csv -algorithm A [-policy p.json] [-progress] [flags] -out out.csv
//	ppdp algorithms [-json]
//	ppdp policy    validate|show file.json | convert [flags] [-out p.json]
//	ppdp risk      -dataset census|hospital -in file.csv [-threshold 0.2]
//	ppdp utility   -dataset census|hospital -original orig.csv -released rel.csv [-k 10]
//	ppdp experiment -id E1 [-quick] [-rows N] | -all [-quick]
//	ppdp serve     [-addr :8080] [-workers N] [-job-workers N] [-queue-depth N]
//	               [-job-ttl 15m] [-timeout 60s] [-preload census=5000] [-policy name=p.json]
//	ppdp spec      create|list|get|delete|append [-server http://localhost:8080] [flags]
//
// The anonymize subcommand accepts any registered algorithm; `ppdp
// algorithms` prints the registry's listing — name, description, supported
// policy criteria, the flags each algorithm reads and their defaults —
// generated from the same engine metadata the HTTP service serves on GET
// /v1/algorithms (-json emits that exact body). -progress streams a live
// progress line on stderr, fed by the same engine sink the HTTP jobs report
// through.
//
// Privacy criteria are declared either with the flat flags (-k/-l/-t/...)
// or declaratively with -policy file.json, a versioned JSON document
// composing criteria (see internal/policy and docs/API.md). `ppdp policy`
// validates and canonicalizes policy files and converts flat flags into
// them; either surface runs the same pipeline, and anonymize echoes the
// canonical policy it enforced on stderr.
//
// `ppdp serve` exposes the same pipeline over HTTP, synchronously and as
// background jobs behind one bounded executor (-job-workers running,
// -queue-depth waiting) — see internal/server and docs/ARCHITECTURE.md for
// the endpoint reference. -policy preloads a stored policy clients can
// reference with "policy_ref".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/ppdp/ppdp/internal/core"
	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/engine"
	"github.com/ppdp/ppdp/internal/experiments"
	"github.com/ppdp/ppdp/internal/hierarchy"
	"github.com/ppdp/ppdp/internal/metrics"
	"github.com/ppdp/ppdp/internal/policy"
	"github.com/ppdp/ppdp/internal/risk"
	"github.com/ppdp/ppdp/internal/synth"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ppdp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "generate":
		return cmdGenerate(args[1:])
	case "anonymize":
		return cmdAnonymize(args[1:])
	case "algorithms":
		return cmdAlgorithms(args[1:])
	case "policy":
		return cmdPolicy(args[1:])
	case "risk":
		return cmdRisk(args[1:])
	case "utility":
		return cmdUtility(args[1:])
	case "experiment":
		return cmdExperiment(args[1:])
	case "serve":
		return cmdServe(args[1:])
	case "spec":
		return cmdSpec(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `ppdp - privacy-preserving data publishing toolkit

subcommands:
  generate    generate a synthetic census or hospital dataset as CSV
  anonymize   anonymize a CSV dataset with k-anonymity / l-diversity / t-closeness
  algorithms  list the registered algorithms with their parameters (-json for machine-readable)
  policy      validate, canonicalize or convert declarative privacy-policy files
  risk        assess re-identification and attribute-disclosure risk of a release
  utility     compare a released table against the original with utility metrics
  experiment  run one or all of the survey-reproduction experiments (E1-E12)
  serve       run the HTTP anonymization service (see docs/ARCHITECTURE.md)
  spec        manage release specs on a running service (continuous anonymization)

anonymize algorithms (-algorithm) and the flags each one reads:`)
	writeAlgorithmListing(os.Stderr)
	fmt.Fprintln(os.Stderr, `
run 'ppdp <subcommand> -h' for the full flag list of a subcommand.`)
}

// flagOf derives an algorithm parameter's CLI flag name from the engine
// metadata: the explicit Flag override when set, otherwise the wire name
// with underscores dashed.
func flagOf(p engine.Param) string {
	if p.Flag != "" {
		return p.Flag
	}
	return strings.ReplaceAll(p.Name, "_", "-")
}

// defaultInt and defaultFloat resolve a shared flag default from the engine
// registry metadata (falling back only if no algorithm declares one), so the
// CLI, the server and GET /v1/algorithms all advertise the same values. The
// coercion goes through Param's own helpers, so a default the server would
// resolve (e.g. a float parameter declared with an int literal) resolves
// identically here.
func defaultInt(param string, fallback int) int {
	return engine.Param{Default: engine.ParamDefault(param)}.IntDefault(fallback)
}

func defaultFloat(param string, fallback float64) float64 {
	return engine.Param{Default: engine.ParamDefault(param)}.FloatDefault(fallback)
}

// writeAlgorithmListing renders the registry's algorithms as the usage
// block: one line of flags (required first, optional bracketed) and one line
// of description per algorithm. Both the CLI usage and `ppdp algorithms`
// are generated from the same engine metadata the server serves, so a newly
// registered algorithm shows up everywhere with no edit here.
func writeAlgorithmListing(w *os.File) {
	for _, info := range engine.Infos() {
		var required, optional []string
		for _, p := range info.Parameters {
			// quasi_identifiers is schema-driven in the CLI (no flag).
			if p.Name == "quasi_identifiers" {
				continue
			}
			if p.Required {
				required = append(required, "-"+flagOf(p))
			} else {
				optional = append(optional, "-"+flagOf(p))
			}
		}
		flags := strings.Join(required, " ")
		if len(optional) > 0 {
			flags += " [" + strings.Join(optional, " ") + "]"
		}
		fmt.Fprintf(w, "  %-11s %s\n              %s\n", info.Name, strings.TrimSpace(flags), info.Description)
	}
}

// writeAlgorithmsJSON renders the registry's capability cards exactly as the
// HTTP service serves them on GET /v1/algorithms — same struct, same
// encoder settings — so scripts can consume either source interchangeably
// (drift-gated by TestAlgorithmsJSONMatchesServer).
func writeAlgorithmsJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"algorithms": engine.Infos()})
}

// cmdAlgorithms prints the algorithm registry: the same metadata the HTTP
// service serves on GET /v1/algorithms, as a flag-oriented text table, or
// verbatim as JSON under -json.
func cmdAlgorithms(args []string) error {
	fs := flag.NewFlagSet("algorithms", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the capability cards as JSON (the GET /v1/algorithms body)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jsonOut {
		return writeAlgorithmsJSON(os.Stdout)
	}
	for _, info := range engine.Infos() {
		kind := string(info.Kind)
		if info.FullDomain {
			kind += ", full-domain"
		}
		if info.RequiresHierarchies {
			kind += ", needs hierarchies"
		}
		if info.Parallel {
			kind += ", parallel"
		}
		if info.Default {
			kind += ", default"
		}
		fmt.Printf("%s — %s (%s)\n", info.Name, info.Description, kind)
		if len(info.Criteria) > 0 {
			fmt.Printf("  %-18s %s\n", "policy criteria", strings.Join(info.Criteria, ", "))
		}
		for _, p := range info.Parameters {
			req := "optional"
			if p.Required {
				req = "required"
			}
			flagName := "-" + flagOf(p)
			if p.Name == "quasi_identifiers" {
				flagName = "(schema)"
			}
			desc := p.Description
			if p.Default != nil {
				desc += fmt.Sprintf(" (default %v)", p.Default)
			}
			fmt.Printf("  %-18s %-8s %-8s %s\n", flagName, p.Type, req, desc)
		}
	}
	return nil
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	datasetName := fs.String("dataset", "census", "dataset family: census or hospital")
	rows := fs.Int("rows", 5000, "number of rows")
	seed := fs.Int64("seed", 42, "random seed")
	out := fs.String("out", "", "output CSV path (stdout when empty)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	family, err := synth.FamilyByName(*datasetName)
	if err != nil {
		return err
	}
	tbl := family.Generate(*rows, *seed)
	if *out == "" {
		return tbl.WriteCSV(os.Stdout)
	}
	if err := tbl.WriteCSVFile(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %d rows to %s\n", tbl.Len(), *out)
	return nil
}

// loadTable reads a CSV in the named dataset family (full schema with an
// identifier-free fallback for released tables — see synth.Family.ReadCSV)
// and returns it with the family's hierarchies.
func loadTable(family, path string) (*dataset.Table, *hierarchy.Set, error) {
	f, err := synth.FamilyByName(family)
	if err != nil {
		return nil, nil, err
	}
	tbl, err := f.ReadCSVFile(path)
	if err != nil {
		return nil, nil, err
	}
	return tbl, f.Hierarchies(), nil
}

func cmdAnonymize(args []string) error {
	fs := flag.NewFlagSet("anonymize", flag.ContinueOnError)
	datasetName := fs.String("dataset", "census", "dataset family: census or hospital")
	in := fs.String("in", "", "input CSV path (required)")
	out := fs.String("out", "", "output CSV path (stdout when empty)")
	algorithm := fs.String("algorithm", "mondrian", strings.Join(engine.Names(), "|"))
	// Shared parameter defaults come from the engine registry's metadata —
	// the same source GET /v1/algorithms serves and the server resolves — so
	// the CLI cannot drift from the service.
	k := fs.Int("k", defaultInt("k", 10), "k-anonymity parameter")
	l := fs.Int("l", 0, "l-diversity parameter (0 disables; anatomy requires >= 2)")
	t := fs.Float64("t", 0, "t-closeness parameter (0 disables)")
	diversity := fs.String("diversity", "", "l-diversity variant: distinct|entropy|recursive (distinct when empty)")
	c := fs.Float64("c", 0, "recursive (c,l)-diversity constant (default 3)")
	sensitive := fs.String("sensitive", "", "sensitive attribute (defaults to the schema's first sensitive column)")
	strict := fs.Bool("strict", false, "strict Mondrian partitioning (never separate equal values)")
	workers := fs.Int("workers", 0, "worker pool bound for parallel algorithms (0 = GOMAXPROCS)")
	suppress := fs.Float64("max-suppression", defaultFloat("max_suppression", 0.02),
		"maximum fraction of suppressed records (datafly/samarati)")
	policyPath := fs.String("policy", "",
		"privacy-policy JSON file declaring the criteria (replaces -k/-l/-t/-diversity/-c/-max-suppression)")
	progress := fs.Bool("progress", false, "report run progress on stderr")
	// One-shot CLI runs always compute fresh; the flag exists for parity with
	// the service's no_cache request option so scripted invocations translate
	// verbatim between the two surfaces.
	fs.Bool("no-cache", false, "accepted for parity with the service's no_cache option (local runs always compute fresh)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("anonymize: -in is required")
	}
	// Validate the cheap flags before touching the filesystem so usage
	// errors do not depend on the input file being readable.
	alg, err := core.ParseAlgorithm(*algorithm)
	if err != nil {
		return err
	}
	var pol *policy.Policy
	if *policyPath != "" {
		// A policy file and explicit flat privacy flags are mutually
		// exclusive; the flat flags' defaults are simply not applied.
		flatFlags := map[string]bool{
			"k": true, "l": true, "t": true, "diversity": true, "c": true, "max-suppression": true,
		}
		var conflict []string
		fs.Visit(func(f *flag.Flag) {
			if flatFlags[f.Name] {
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return fmt.Errorf("anonymize: -policy and the flat privacy flags are mutually exclusive (got %s)",
				strings.Join(conflict, " "))
		}
		if pol, err = loadPolicyFile(*policyPath); err != nil {
			return err
		}
	}
	tbl, hs, err := loadTable(*datasetName, *in)
	if err != nil {
		return err
	}
	cfg := core.Config{
		Algorithm:      alg,
		Sensitive:      *sensitive,
		StrictMondrian: *strict,
		Workers:        *workers,
		Hierarchies:    hs,
	}
	if pol != nil {
		cfg.Policy = pol
	} else {
		cfg.K = *k
		cfg.L = *l
		cfg.T = *t
		cfg.DiversityMode = core.DiversityMode(*diversity)
		cfg.C = *c
		cfg.MaxSuppression = *suppress
	}
	if *progress {
		// The same engine sink the HTTP jobs feed on: events arrive
		// serialized and strictly increasing (see engine.Monotone), so a
		// plain carriage-return line needs no locking.
		cfg.Progress = func(done, total int) {
			percent := 100.0
			if total > 0 {
				percent = 100 * float64(done) / float64(total)
			}
			fmt.Fprintf(os.Stderr, "\rprogress: %d/%d units (%3.0f%%)", done, total, percent)
		}
	}
	anon, err := core.New(cfg)
	if err != nil {
		return err
	}
	// Echo the canonical policy the run enforces — for flat flags, their
	// translation — matching the HTTP service's response echo.
	if p := anon.Policy(); p != nil {
		fmt.Fprintf(os.Stderr, "policy: %s\n", p.Describe())
	}
	rel, err := anon.Anonymize(tbl)
	if *progress {
		fmt.Fprintln(os.Stderr) // finish the carriage-return progress line
	}
	if err != nil {
		return err
	}
	if rel.Table != nil {
		fmt.Fprintf(os.Stderr, "released %d rows: k=%d distinct-l=%d max-EMD=%.3f NCP=%.3f suppressed=%d\n",
			rel.Table.Len(), rel.Measured.K, rel.Measured.DistinctL, rel.Measured.MaxEMD, rel.Measured.NCP, rel.Measured.SuppressedRows)
		if *out == "" {
			return rel.Table.WriteCSV(os.Stdout)
		}
		return rel.Table.WriteCSVFile(*out)
	}
	// Anatomy: write QIT and ST side by side.
	qitPath, stPath := *out+".qit.csv", *out+".st.csv"
	if *out == "" {
		fmt.Println("-- QIT --")
		if err := rel.QIT.WriteCSV(os.Stdout); err != nil {
			return err
		}
		fmt.Println("-- ST --")
		return rel.ST.WriteCSV(os.Stdout)
	}
	if err := rel.QIT.WriteCSVFile(qitPath); err != nil {
		return err
	}
	if err := rel.ST.WriteCSVFile(stPath); err != nil {
		return err
	}
	fmt.Printf("wrote %s and %s\n", qitPath, stPath)
	return nil
}

func cmdRisk(args []string) error {
	fs := flag.NewFlagSet("risk", flag.ContinueOnError)
	datasetName := fs.String("dataset", "census", "dataset family: census or hospital")
	in := fs.String("in", "", "released CSV path (required)")
	threshold := fs.Float64("threshold", 0.2, "per-record risk threshold")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("risk: -in is required")
	}
	tbl, _, err := loadTable(*datasetName, *in)
	if err != nil {
		return err
	}
	r, err := risk.MeasureReidentification(tbl, *threshold)
	if err != nil {
		return err
	}
	fmt.Printf("records=%d classes=%d prosecutor-max=%.4f prosecutor-avg=%.4f records-at-risk(>%.2f)=%.4f\n",
		r.Records, r.Classes, r.ProsecutorMax, r.ProsecutorAvg, r.Threshold, r.RecordsAtRisk)
	for _, sensitive := range tbl.Schema().SensitiveNames() {
		h, err := risk.HomogeneityAttack(tbl, sensitive)
		if err != nil {
			return err
		}
		base, err := risk.BaselineGuessRate(tbl, sensitive)
		if err != nil {
			return err
		}
		fmt.Printf("sensitive=%s fully-disclosed=%.4f guess-rate=%.4f baseline=%.4f\n",
			sensitive, h.FullyDisclosed, h.ExpectedGuessRate, base)
	}
	return nil
}

func cmdUtility(args []string) error {
	fs := flag.NewFlagSet("utility", flag.ContinueOnError)
	datasetName := fs.String("dataset", "census", "dataset family: census or hospital")
	original := fs.String("original", "", "original CSV path (required)")
	released := fs.String("released", "", "released CSV path (required)")
	k := fs.Int("k", 10, "k used for the normalized average class size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *original == "" || *released == "" {
		return fmt.Errorf("utility: -original and -released are required")
	}
	orig, hs, err := loadTable(*datasetName, *original)
	if err != nil {
		return err
	}
	rel, _, err := loadTable(*datasetName, *released)
	if err != nil {
		return err
	}
	ncp, err := metrics.NCP(orig, rel, hs)
	if err != nil {
		return err
	}
	dm, err := metrics.Discernibility(rel, orig.Len())
	if err != nil {
		return err
	}
	cavg, err := metrics.NormalizedAverageClassSize(rel, *k)
	if err != nil {
		return err
	}
	fmt.Printf("NCP=%.4f discernibility=%.1f C_avg(k=%d)=%.3f\n", ncp, dm, *k, cavg)
	return nil
}

func cmdExperiment(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	id := fs.String("id", "", "experiment id (E1..E12)")
	all := fs.Bool("all", false, "run every experiment")
	quick := fs.Bool("quick", false, "use reduced dataset sizes and sweeps")
	rows := fs.Int("rows", 0, "override dataset size")
	seed := fs.Int64("seed", 42, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opt := experiments.Options{Quick: *quick, Rows: *rows, Seed: *seed}
	if *all {
		return experiments.RunAll(opt, os.Stdout)
	}
	if *id == "" {
		return fmt.Errorf("experiment: -id or -all is required (known: %v)", experiments.IDs())
	}
	rep, err := experiments.Run(*id, opt)
	if err != nil {
		return err
	}
	rep.Print(os.Stdout)
	return nil
}
