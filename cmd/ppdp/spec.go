package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

// cmdSpec implements the `ppdp spec` subcommand family: managing release
// specs on a running ppdp service. A spec declares "keep this dataset
// continuously anonymized under this policy"; the server's reconciler
// republishes the release whenever the dataset changes.
//
//	ppdp spec create -server URL -name N -dataset D [-algorithm A] [flags]
//	ppdp spec list   -server URL
//	ppdp spec get    -server URL name
//	ppdp spec delete -server URL name
//	ppdp spec append -server URL -dataset D file.csv
func cmdSpec(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("spec: missing subcommand (create, list, get, delete or append)")
	}
	switch args[0] {
	case "create":
		return cmdSpecCreate(args[1:])
	case "list":
		return cmdSpecList(args[1:])
	case "get":
		return cmdSpecGet(args[1:])
	case "delete":
		return cmdSpecDelete(args[1:])
	case "append":
		return cmdSpecAppend(args[1:])
	default:
		return fmt.Errorf("spec: unknown subcommand %q (known: create, list, get, delete, append)", args[0])
	}
}

// serverFlag registers the shared -server flag.
func serverFlag(fs *flag.FlagSet) *string {
	return fs.String("server", "http://localhost:8080", "base URL of the ppdp service")
}

// specDo issues one API request and decodes the response. Non-2xx responses
// surface the service's error envelope (code and message) as the command
// error, so scripting against the CLI sees the same machine-readable codes
// as scripting against the API.
func specDo(method, url, contentType string, body io.Reader) (map[string]any, error) {
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	client := &http.Client{Timeout: 5 * time.Minute}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := map[string]any{}
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			return nil, fmt.Errorf("%s %s: %s: non-JSON response: %.200s", method, url, resp.Status, raw)
		}
	}
	if resp.StatusCode >= 300 {
		if env, ok := out["error"].(map[string]any); ok {
			return nil, fmt.Errorf("%s %s: %v: %v", method, url, env["code"], env["message"])
		}
		return nil, fmt.Errorf("%s %s: %s", method, url, resp.Status)
	}
	return out, nil
}

// printJSON renders a response body as indented JSON on stdout.
func printJSON(v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Println(string(data))
	return err
}

func cmdSpecCreate(args []string) error {
	fs := flag.NewFlagSet("spec create", flag.ContinueOnError)
	server := serverFlag(fs)
	name := fs.String("name", "", "spec name (required)")
	ds := fs.String("dataset", "", "dataset the spec watches (required)")
	algorithm := fs.String("algorithm", "mondrian", "anonymization algorithm")
	k := fs.Int("k", 0, "k-anonymity parameter (0 omits it; declare criteria in -policy instead)")
	policyFile := fs.String("policy", "", "policy document to pin (JSON file)")
	policyRef := fs.String("policy-ref", "", "stored policy to pin by name")
	sensitive := fs.String("sensitive", "", "sensitive attribute override")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" || *ds == "" {
		return fmt.Errorf("spec create: -name and -dataset are required")
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("spec create: unexpected argument %q", fs.Arg(0))
	}
	body := map[string]any{"name": *name, "dataset": *ds, "algorithm": *algorithm}
	if *k > 0 {
		body["k"] = *k
	}
	if *sensitive != "" {
		body["sensitive"] = *sensitive
	}
	if *policyRef != "" {
		body["policy_ref"] = *policyRef
	}
	if *policyFile != "" {
		pol, err := loadPolicyFile(*policyFile)
		if err != nil {
			return err
		}
		body["policy"] = pol
	}
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	out, err := specDo("POST", strings.TrimRight(*server, "/")+"/v1/specs", "application/json", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	return printJSON(out)
}

func cmdSpecList(args []string) error {
	fs := flag.NewFlagSet("spec list", flag.ContinueOnError)
	server := serverFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	out, err := specDo("GET", strings.TrimRight(*server, "/")+"/v1/specs", "", nil)
	if err != nil {
		return err
	}
	return printJSON(out)
}

func cmdSpecGet(args []string) error {
	fs := flag.NewFlagSet("spec get", flag.ContinueOnError)
	server := serverFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("spec get: exactly one spec name is required")
	}
	out, err := specDo("GET", strings.TrimRight(*server, "/")+"/v1/specs/"+fs.Arg(0), "", nil)
	if err != nil {
		return err
	}
	return printJSON(out)
}

func cmdSpecDelete(args []string) error {
	fs := flag.NewFlagSet("spec delete", flag.ContinueOnError)
	server := serverFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("spec delete: exactly one spec name is required")
	}
	if _, err := specDo("DELETE", strings.TrimRight(*server, "/")+"/v1/specs/"+fs.Arg(0), "", nil); err != nil {
		return err
	}
	fmt.Printf("deleted spec %s\n", fs.Arg(0))
	return nil
}

// cmdSpecAppend streams a CSV file into POST /v1/datasets/{name}/rows — the
// dataset-growth half of the continuous-publication loop: the append bumps
// the dataset generation and every spec watching it reconciles.
func cmdSpecAppend(args []string) error {
	fs := flag.NewFlagSet("spec append", flag.ContinueOnError)
	server := serverFlag(fs)
	ds := fs.String("dataset", "", "dataset to append to (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ds == "" {
		return fmt.Errorf("spec append: -dataset is required")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("spec append: exactly one CSV file is required")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	out, err := specDo("POST", strings.TrimRight(*server, "/")+"/v1/datasets/"+*ds+"/rows", "text/csv", f)
	if err != nil {
		return err
	}
	return printJSON(out)
}
