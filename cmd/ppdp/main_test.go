package main

import (
	"path/filepath"
	"testing"
)

func TestRunSubcommands(t *testing.T) {
	dir := t.TempDir()
	census := filepath.Join(dir, "census.csv")
	anon := filepath.Join(dir, "anon.csv")

	steps := [][]string{
		{"generate", "-dataset", "census", "-rows", "400", "-seed", "1", "-out", census},
		{"anonymize", "-dataset", "census", "-in", census, "-algorithm", "mondrian", "-k", "5", "-out", anon},
		{"risk", "-dataset", "census", "-in", anon},
		{"utility", "-dataset", "census", "-original", census, "-released", anon, "-k", "5"},
		{"experiment", "-id", "E10", "-quick"},
	}
	for _, args := range steps {
		if err := run(args); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
	}
}

func TestRunHospitalAnatomy(t *testing.T) {
	dir := t.TempDir()
	hosp := filepath.Join(dir, "hospital.csv")
	out := filepath.Join(dir, "anat")
	if err := run([]string{"generate", "-dataset", "hospital", "-rows", "400", "-seed", "2", "-out", hosp}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"anonymize", "-dataset", "hospital", "-in", hosp, "-algorithm", "anatomy", "-l", "2", "-out", out}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"bogus"},
		{"generate", "-dataset", "bogus"},
		{"anonymize"},
		{"anonymize", "-in", "/does/not/exist.csv"},
		{"risk"},
		{"utility"},
		{"experiment"},
		{"experiment", "-id", "E99"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help returned error: %v", err)
	}
}
