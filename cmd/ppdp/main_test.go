package main

import (
	"os"
	"strings"

	"github.com/ppdp/ppdp/internal/server"
	"path/filepath"
	"testing"
)

func TestRunSubcommands(t *testing.T) {
	dir := t.TempDir()
	census := filepath.Join(dir, "census.csv")
	anon := filepath.Join(dir, "anon.csv")

	steps := [][]string{
		{"generate", "-dataset", "census", "-rows", "400", "-seed", "1", "-out", census},
		{"anonymize", "-dataset", "census", "-in", census, "-algorithm", "mondrian", "-k", "5", "-out", anon},
		{"risk", "-dataset", "census", "-in", anon},
		{"utility", "-dataset", "census", "-original", census, "-released", anon, "-k", "5"},
		{"experiment", "-id", "E10", "-quick"},
	}
	for _, args := range steps {
		if err := run(args); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
	}
}

// TestAlgorithmsSubcommand checks the registry listing subcommand: it must
// succeed and reject stray flags.
func TestAlgorithmsSubcommand(t *testing.T) {
	if err := run([]string{"algorithms"}); err != nil {
		t.Fatalf("algorithms: %v", err)
	}
	if err := run([]string{"algorithms", "-bogus"}); err == nil {
		t.Error("algorithms with unknown flag succeeded, want error")
	}
}

func TestRunHospitalAnatomy(t *testing.T) {
	dir := t.TempDir()
	hosp := filepath.Join(dir, "hospital.csv")
	out := filepath.Join(dir, "anat")
	if err := run([]string{"generate", "-dataset", "hospital", "-rows", "400", "-seed", "2", "-out", hosp}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"anonymize", "-dataset", "hospital", "-in", hosp, "-algorithm", "anatomy", "-l", "2", "-out", out}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"bogus"},
		{"generate", "-dataset", "bogus"},
		{"anonymize"},
		{"anonymize", "-in", "/does/not/exist.csv"},
		{"risk"},
		{"utility"},
		{"experiment"},
		{"experiment", "-id", "E99"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help returned error: %v", err)
	}
}

// TestAnonymizeFlagErrors covers the anonymize flag-parsing and validation
// error paths: missing input, unknown algorithm, and privacy parameters the
// core config rejects.
func TestAnonymizeFlagErrors(t *testing.T) {
	dir := t.TempDir()
	census := filepath.Join(dir, "census.csv")
	if err := run([]string{"generate", "-dataset", "census", "-rows", "120", "-seed", "1", "-out", census}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"missing -in", []string{"anonymize", "-dataset", "census"}, "-in is required"},
		{"unknown algorithm", []string{"anonymize", "-in", census, "-algorithm", "bogus"}, "unknown algorithm"},
		// The algorithm is validated before the input file is opened.
		{"unknown algorithm without file", []string{"anonymize", "-in", "/does/not/exist.csv", "-algorithm", "bogus"}, "unknown algorithm"},
		{"invalid k", []string{"anonymize", "-in", census, "-k", "0"}, "K must be at least 1"},
		{"negative l", []string{"anonymize", "-in", census, "-k", "5", "-l", "-2"}, "invalid configuration"},
		{"t out of range", []string{"anonymize", "-in", census, "-k", "5", "-t", "1.5"}, "invalid configuration"},
		{"anatomy needs l", []string{"anonymize", "-in", census, "-algorithm", "anatomy"}, "anatomy requires L >= 2"},
		{"bad suppression", []string{"anonymize", "-in", census, "-max-suppression", "2"}, "invalid configuration"},
		{"negative workers", []string{"anonymize", "-in", census, "-workers", "-1"}, "invalid configuration"},
		{"unparseable flag", []string{"anonymize", "-in", census, "-k", "abc"}, "invalid value"},
		{"unknown flag", []string{"anonymize", "-in", census, "-bogus-flag"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		err := run(tc.args)
		if err == nil {
			t.Errorf("%s: run(%v) succeeded, want error", tc.name, tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestAnonymizeExtendedFlags drives the newer anonymize flags end-to-end.
func TestAnonymizeExtendedFlags(t *testing.T) {
	dir := t.TempDir()
	hosp := filepath.Join(dir, "hospital.csv")
	out := filepath.Join(dir, "anon.csv")
	if err := run([]string{"generate", "-dataset", "hospital", "-rows", "300", "-seed", "3", "-out", hosp}); err != nil {
		t.Fatal(err)
	}
	err := run([]string{
		"anonymize", "-dataset", "hospital", "-in", hosp, "-out", out,
		"-algorithm", "mondrian", "-k", "5", "-l", "2",
		"-diversity", "recursive", "-c", "4", "-sensitive", "diagnosis",
		"-strict", "-workers", "2",
	})
	if err != nil {
		t.Fatalf("extended flags: %v", err)
	}
	if _, statErr := os.Stat(out); statErr != nil {
		t.Fatalf("no output written: %v", statErr)
	}
}

// TestServeFlagErrors covers the serve subcommand's flag validation without
// binding a listener.
func TestServeFlagErrors(t *testing.T) {
	cases := [][]string{
		{"serve", "-bogus-flag"},
		{"serve", "-preload", "bogus=100"},
		{"serve", "-preload", "census=abc"},
		{"serve", "-preload", "census=0"},
		{"serve", "-preload", "census=-5"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestPreloadDataset checks the -preload spec parser against a real server.
func TestPreloadDataset(t *testing.T) {
	srv := server.New(server.Config{})
	if seeded, err := preloadDataset(srv, "hospital=150"); err != nil || !seeded {
		t.Fatalf("preload: seeded=%v err=%v", seeded, err)
	}
	// The same name again is skipped, the contract that lets -preload
	// coexist with a dataset recovered from -data-dir.
	if seeded, err := preloadDataset(srv, "hospital=150"); err != nil || seeded {
		t.Errorf("duplicate preload: seeded=%v err=%v, want a silent skip", seeded, err)
	}
	// Bare family defaults to 5000 rows under the family name.
	if seeded, err := preloadDataset(srv, "census"); err != nil || !seeded {
		t.Fatalf("bare family preload: seeded=%v err=%v", seeded, err)
	}
}
