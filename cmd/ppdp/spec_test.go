package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/ppdp/ppdp/internal/server"
	"github.com/ppdp/ppdp/internal/synth"
)

// TestSpecSubcommands drives the whole `ppdp spec` verb set against an
// in-process service: create a spec, watch it reconcile, append rows through
// the CLI, and delete it.
func TestSpecSubcommands(t *testing.T) {
	srv := server.New(server.Config{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Seed a dataset and render a CSV chunk of fresh rows for the append.
	seed := map[string]any{"name": "census", "family": "census", "rows": 150, "seed": 3}
	payload, _ := json.Marshal(seed)
	resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("seed dataset: %d", resp.StatusCode)
	}
	csvPath := filepath.Join(t.TempDir(), "more.csv")
	full := synth.Census(200, 3)
	idx := make([]int, 50)
	for i := range idx {
		idx[i] = 150 + i
	}
	sub, err := full.Select(idx)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.WriteCSVFile(csvPath); err != nil {
		t.Fatal(err)
	}

	out := captureStdout(t, func() error {
		return run([]string{"spec", "create", "-server", ts.URL,
			"-name", "live", "-dataset", "census", "-algorithm", "mondrian", "-k", "4"})
	})
	if !bytes.Contains(out, []byte(`"name": "live"`)) {
		t.Fatalf("create output: %s", out)
	}

	// Poll through the CLI until the first reconciliation lands.
	deadline := time.Now().Add(30 * time.Second)
	for {
		out = captureStdout(t, func() error {
			return run([]string{"spec", "get", "-server", ts.URL, "live"})
		})
		var info map[string]any
		if err := json.Unmarshal(out, &info); err != nil {
			t.Fatalf("get output not JSON: %s", out)
		}
		if rel, _ := info["release_id"].(string); rel != "" && info["state"] == "idle" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("spec never reconciled: %s", out)
		}
		time.Sleep(5 * time.Millisecond)
	}

	out = captureStdout(t, func() error {
		return run([]string{"spec", "append", "-server", ts.URL, "-dataset", "census", csvPath})
	})
	var ds map[string]any
	if err := json.Unmarshal(out, &ds); err != nil || ds["rows"] != float64(200) {
		t.Fatalf("append output: %s (err %v)", out, err)
	}

	out = captureStdout(t, func() error {
		return run([]string{"spec", "list", "-server", ts.URL})
	})
	if !bytes.Contains(out, []byte(`"live"`)) {
		t.Fatalf("list output: %s", out)
	}

	out = captureStdout(t, func() error {
		return run([]string{"spec", "delete", "-server", ts.URL, "live"})
	})
	if !strings.Contains(string(out), "deleted spec live") {
		t.Fatalf("delete output: %s", out)
	}
}

// TestSpecSubcommandErrors covers the client-side validation and the error
// envelope passthrough.
func TestSpecSubcommandErrors(t *testing.T) {
	srv := server.New(server.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := [][]string{
		{"spec"},
		{"spec", "bogus"},
		{"spec", "create", "-server", ts.URL, "-dataset", "census"},
		{"spec", "create", "-server", ts.URL, "-name", "x"},
		{"spec", "get", "-server", ts.URL},
		{"spec", "delete", "-server", ts.URL},
		{"spec", "append", "-server", ts.URL, "nope.csv"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}

	// The service's machine-readable code surfaces in the CLI error.
	err := run([]string{"spec", "create", "-server", ts.URL,
		"-name", "x", "-dataset", "missing", "-k", "4"})
	if err == nil || !strings.Contains(err.Error(), "not_found") {
		t.Errorf("unknown dataset error = %v, want the not_found code", err)
	}
	if err := run([]string{"spec", "get", "-server", ts.URL, "ghost"}); err == nil || !strings.Contains(err.Error(), "not_found") {
		t.Errorf("get ghost error = %v", err)
	}
}
