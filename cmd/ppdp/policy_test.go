package main

import (
	"bytes"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ppdp/ppdp/internal/server"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns what
// it wrote.
func captureStdout(t *testing.T, fn func() error) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	fnErr := fn()
	w.Close()
	os.Stdout = old
	out, readErr := io.ReadAll(r)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if fnErr != nil {
		t.Fatalf("command failed: %v (output %s)", fnErr, out)
	}
	return out
}

// TestAlgorithmsJSONMatchesServer is the drift gate for `ppdp algorithms
// -json`: its output must be byte-identical to the GET /v1/algorithms body,
// because both are documented as the same machine-readable capability cards.
func TestAlgorithmsJSONMatchesServer(t *testing.T) {
	cliOut := captureStdout(t, func() error { return run([]string{"algorithms", "-json"}) })

	srv := server.New(server.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	serverOut, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cliOut, serverOut) {
		t.Errorf("ppdp algorithms -json drifted from GET /v1/algorithms:\nCLI:    %s\nserver: %s", cliOut, serverOut)
	}
	// The cards carry the policy criterion support the redesign added.
	if !bytes.Contains(cliOut, []byte(`"criteria"`)) {
		t.Errorf("capability cards carry no criteria: %s", cliOut)
	}
}

// TestPolicySubcommand drives validate / show / convert end to end.
func TestPolicySubcommand(t *testing.T) {
	dir := t.TempDir()
	polPath := filepath.Join(dir, "pol.json")

	// convert writes a canonical policy file...
	if err := run([]string{"policy", "convert", "-k", "5", "-l", "2", "-sensitive", "diagnosis",
		"-max-suppression", "0.02", "-out", polPath}); err != nil {
		t.Fatalf("convert: %v", err)
	}
	// ...that validate accepts and show round-trips byte-identically.
	if err := run([]string{"policy", "validate", polPath}); err != nil {
		t.Fatalf("validate: %v", err)
	}
	shown := captureStdout(t, func() error { return run([]string{"policy", "show", polPath}) })
	onDisk, err := os.ReadFile(polPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shown, onDisk) {
		t.Errorf("show output differs from the canonical file:\nshow: %s\nfile: %s", shown, onDisk)
	}

	// Invalid documents are rejected with the strict decoder's diagnostics.
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, []byte(`{"criteria":[{"type":"k-anonymity","k":5,"t":0.2}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"policy", "validate", badPath}); err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Errorf("validate(bad) = %v, want unknown field error", err)
	}

	// Usage errors.
	for _, args := range [][]string{
		{"policy"},
		{"policy", "bogus"},
		{"policy", "validate"},
		{"policy", "validate", "a.json", "b.json"},
		{"policy", "show", filepath.Join(dir, "missing.json")},
		{"policy", "convert"}, // no criteria enabled
		{"policy", "convert", "-k", "5", "stray-arg"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestAnonymizeWithPolicyFile checks -policy on the anonymize subcommand:
// it runs the policy pipeline and excludes the flat privacy flags.
func TestAnonymizeWithPolicyFile(t *testing.T) {
	dir := t.TempDir()
	hosp := filepath.Join(dir, "hospital.csv")
	polPath := filepath.Join(dir, "pol.json")
	out := filepath.Join(dir, "anon.csv")
	if err := run([]string{"generate", "-dataset", "hospital", "-rows", "300", "-seed", "4", "-out", hosp}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"policy", "convert", "-k", "4", "-l", "2", "-sensitive", "diagnosis", "-out", polPath}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"anonymize", "-dataset", "hospital", "-in", hosp, "-policy", polPath, "-out", out}); err != nil {
		t.Fatalf("anonymize -policy: %v", err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("no output written: %v", err)
	}
	// Mixing -policy with explicit flat privacy flags is an error.
	err := run([]string{"anonymize", "-dataset", "hospital", "-in", hosp, "-policy", polPath, "-k", "5"})
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("-policy with -k error = %v", err)
	}
	// A policy naming a criterion the algorithm cannot enforce fails early.
	tPol := filepath.Join(dir, "tpol.json")
	if err := run([]string{"policy", "convert", "-k", "4", "-t", "0.2", "-sensitive", "diagnosis", "-out", tPol}); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"anonymize", "-dataset", "hospital", "-in", hosp, "-algorithm", "kmember", "-policy", tPol})
	if err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Errorf("unsupported criterion error = %v", err)
	}
}

// TestServePolicyPreload checks the -policy preload spec parser and the
// programmatic AddPolicy path it drives.
func TestServePolicyPreload(t *testing.T) {
	dir := t.TempDir()
	polPath := filepath.Join(dir, "clinical.json")
	if err := run([]string{"policy", "convert", "-k", "5", "-out", polPath}); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		spec, wantName string
	}{
		{"clinical=" + polPath, "clinical"},
		{polPath, "clinical"}, // bare path: base name without extension
	} {
		name, path, err := parsePolicyPreload(tc.spec)
		if err != nil || name != tc.wantName || path != polPath {
			t.Errorf("parsePolicyPreload(%q) = %q, %q, %v", tc.spec, name, path, err)
		}
	}
	if _, _, err := parsePolicyPreload("=x.json"); err == nil {
		t.Error("empty name accepted")
	}
	srv := server.New(server.Config{})
	defer srv.Close()
	pol, err := loadPolicyFile(polPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddPolicy("clinical", pol); err != nil {
		t.Fatalf("AddPolicy: %v", err)
	}
	if err := srv.AddPolicy("clinical", pol); err == nil {
		t.Error("duplicate AddPolicy succeeded")
	}
}
