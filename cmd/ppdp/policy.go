package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/ppdp/ppdp/internal/policy"
)

// cmdPolicy implements the `ppdp policy` subcommand family: working with
// declarative privacy-policy documents without running an anonymization.
//
//	ppdp policy validate file.json   strict-check a policy file
//	ppdp policy show file.json       print the canonical form
//	ppdp policy convert [flags]      translate flat flags into a policy file
func cmdPolicy(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("policy: missing subcommand (validate, show or convert)")
	}
	switch args[0] {
	case "validate":
		return cmdPolicyValidate(args[1:])
	case "show":
		return cmdPolicyShow(args[1:])
	case "convert":
		return cmdPolicyConvert(args[1:])
	default:
		return fmt.Errorf("policy: unknown subcommand %q (known: validate, show, convert)", args[0])
	}
}

// loadPolicyFile strictly parses a policy document from disk and returns its
// canonical form.
func loadPolicyFile(path string) (*policy.Policy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	pol, err := policy.ParseReader(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return pol, nil
}

func cmdPolicyValidate(args []string) error {
	fs := flag.NewFlagSet("policy validate", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("policy validate: exactly one policy file is required")
	}
	pol, err := loadPolicyFile(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("%s: valid — %s\n", fs.Arg(0), pol.Describe())
	return nil
}

func cmdPolicyShow(args []string) error {
	fs := flag.NewFlagSet("policy show", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("policy show: exactly one policy file is required")
	}
	pol, err := loadPolicyFile(fs.Arg(0))
	if err != nil {
		return err
	}
	data, err := pol.Encode()
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(data)
	return err
}

// cmdPolicyConvert translates the deprecated flat parameters into a policy
// document — the exact translation the pipeline applies to flat requests, so
// converting a flag set and submitting the file changes nothing about the
// release. Flags default to zero (disabled) here: the conversion renders
// what was asked, not the anonymize subcommand's injected defaults.
func cmdPolicyConvert(args []string) error {
	fs := flag.NewFlagSet("policy convert", flag.ContinueOnError)
	k := fs.Int("k", 0, "k-anonymity parameter (0 disables)")
	l := fs.Int("l", 0, "l-diversity parameter (0 disables)")
	t := fs.Float64("t", 0, "t-closeness parameter (0 disables)")
	diversity := fs.String("diversity", "", "l-diversity variant: distinct|entropy|recursive (distinct when empty)")
	c := fs.Float64("c", 0, "recursive (c,l)-diversity constant (default 3)")
	sensitive := fs.String("sensitive", "", "sensitive attribute named on the criteria (empty = resolved at run time)")
	ordered := fs.Bool("ordered", false, "ordered-distance EMD for t-closeness")
	suppress := fs.Float64("max-suppression", 0, "suppression budget (0 disables)")
	out := fs.String("out", "", "output policy path (stdout when empty)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("policy convert: unexpected argument %q", fs.Arg(0))
	}
	pol, err := policy.FromFlat(policy.Flat{
		K:                *k,
		L:                *l,
		DiversityMode:    *diversity,
		C:                *c,
		T:                *t,
		OrderedSensitive: *ordered,
		Sensitive:        *sensitive,
		MaxSuppression:   *suppress,
	})
	if err != nil {
		return err
	}
	data, err := pol.Encode()
	if err != nil {
		return err
	}
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s\n", *out, pol.Describe())
	return nil
}

// parsePolicyPreload parses a `serve -policy` spec: either "name=file.json"
// or a bare path, whose base name (extension stripped) becomes the stored
// policy name.
func parsePolicyPreload(spec string) (name, path string, err error) {
	if n, p, ok := strings.Cut(spec, "="); ok {
		if n == "" || p == "" {
			return "", "", fmt.Errorf("serve: -policy spec %q must be name=file.json or a file path", spec)
		}
		return n, p, nil
	}
	base := filepath.Base(spec)
	if ext := filepath.Ext(base); ext != "" {
		base = strings.TrimSuffix(base, ext)
	}
	if base == "" || base == "." {
		return "", "", fmt.Errorf("serve: cannot derive a policy name from %q", spec)
	}
	return base, spec, nil
}
