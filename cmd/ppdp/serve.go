package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"github.com/ppdp/ppdp/internal/server"
	"github.com/ppdp/ppdp/internal/synth"
)

// cmdServe runs the HTTP anonymization service until SIGINT/SIGTERM, then
// shuts down gracefully.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", server.DefaultAddr, "listen address")
	workers := fs.Int("workers", 0, "per-run worker pool bound for parallel algorithms (0 = GOMAXPROCS)")
	jobWorkers := fs.Int("job-workers", 0, "anonymization runs executing concurrently on the shared sync/async executor (0 = GOMAXPROCS)")
	queueDepth := fs.Int("queue-depth", server.DefaultQueueDepth, "runs waiting for a free worker before both paths answer 429")
	jobTTL := fs.Duration("job-ttl", server.DefaultJobTTL, "how long finished jobs stay pollable on GET /v1/jobs/{id}")
	cacheSize := fs.Int("cache-size", server.DefaultCacheSize,
		"entries in the cross-request result cache answering repeated identical anonymize requests (0 disables)")
	timeout := fs.Duration("timeout", server.DefaultRequestTimeout, "per-run anonymization timeout")
	maxBody := fs.Int64("max-body", server.DefaultMaxBodyBytes, "maximum request body size in bytes")
	preload := fs.String("preload", "", "preload a synthetic dataset, e.g. census=5000 or hospital=10000")
	policySpec := fs.String("policy", "",
		"preload a stored policy from a JSON file, e.g. clinical=policy.json (name defaults to the file base name)")
	apiKeys := fs.String("api-keys", "",
		"API key file enabling tenant authentication: one \"<key> <tenant>\" pair per line (empty = unauthenticated)")
	tenantRate := fs.Float64("tenant-rate", 0,
		"per-tenant request rate limit in requests/second (0 disables)")
	tenantBurst := fs.Int("tenant-burst", 0,
		"per-tenant rate-limit burst size (0 = ceil(tenant-rate))")
	tenantMaxDatasets := fs.Int("tenant-max-datasets", 0,
		"datasets one tenant may store (0 disables the quota)")
	tenantMaxJobs := fs.Int("tenant-max-jobs", 0,
		"jobs one tenant may have queued+running at once (0 disables the quota)")
	quiet := fs.Bool("quiet", false, "disable request logging")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := server.Config{
		Addr:              *addr,
		Workers:           *workers,
		JobWorkers:        *jobWorkers,
		QueueDepth:        *queueDepth,
		JobTTL:            *jobTTL,
		RequestTimeout:    *timeout,
		MaxBodyBytes:      *maxBody,
		CacheSize:         *cacheSize,
		TenantRate:        *tenantRate,
		TenantBurst:       *tenantBurst,
		TenantMaxDatasets: *tenantMaxDatasets,
		TenantMaxJobs:     *tenantMaxJobs,
	}
	if *apiKeys != "" {
		f, err := os.Open(*apiKeys)
		if err != nil {
			return fmt.Errorf("serve: -api-keys: %w", err)
		}
		keys, err := server.ParseAPIKeys(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("serve: -api-keys %s: %w", *apiKeys, err)
		}
		cfg.APIKeys = keys
	}
	// The flag's 0 means "off" (the natural CLI reading); the Config encodes
	// disabled as negative so its zero value keeps the default-on behavior.
	if *cacheSize == 0 {
		cfg.CacheSize = -1
	}
	if !*quiet {
		cfg.Log = log.New(os.Stderr, "", log.LstdFlags)
	}
	srv := server.New(cfg)
	if *preload != "" {
		if err := preloadDataset(srv, *preload); err != nil {
			return err
		}
		if cfg.Log != nil {
			cfg.Log.Printf("preloaded dataset %q", *preload)
		}
	}
	if *policySpec != "" {
		name, path, err := parsePolicyPreload(*policySpec)
		if err != nil {
			return err
		}
		pol, err := loadPolicyFile(path)
		if err != nil {
			return fmt.Errorf("serve: -policy: %w", err)
		}
		if err := srv.AddPolicy(name, pol); err != nil {
			return fmt.Errorf("serve: -policy: %w", err)
		}
		if cfg.Log != nil {
			cfg.Log.Printf("preloaded policy %q: %s", name, pol.Describe())
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return srv.ListenAndServe(ctx)
}

// preloadDataset registers a synthetic dataset before serving, so a fresh
// process answers anonymize calls without a prior upload. The spec is
// family[=rows]; the dataset is stored under the family name.
func preloadDataset(srv *server.Server, spec string) error {
	family, rows := spec, 5000
	if name, val, ok := strings.Cut(spec, "="); ok {
		n, err := strconv.Atoi(val)
		if err != nil || n <= 0 {
			return fmt.Errorf("serve: -preload rows %q must be a positive integer", val)
		}
		family, rows = name, n
	}
	f, err := synth.FamilyByName(family)
	if err != nil {
		return fmt.Errorf("serve: -preload: %w", err)
	}
	return srv.AddDataset(f.Name, f.Name, f.Generate(rows, 42), f.Hierarchies())
}
