package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"github.com/ppdp/ppdp/internal/server"
	"github.com/ppdp/ppdp/internal/synth"
)

// cmdServe runs the HTTP anonymization service until SIGINT/SIGTERM, then
// shuts down gracefully.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", server.DefaultAddr, "listen address")
	workers := fs.Int("workers", 0, "per-run worker pool bound for parallel algorithms (0 = GOMAXPROCS)")
	jobWorkers := fs.Int("job-workers", 0, "anonymization runs executing concurrently on the shared sync/async executor (0 = GOMAXPROCS)")
	queueDepth := fs.Int("queue-depth", server.DefaultQueueDepth, "runs waiting for a free worker before both paths answer 429")
	jobTTL := fs.Duration("job-ttl", server.DefaultJobTTL, "how long finished jobs stay pollable on GET /v1/jobs/{id}")
	cacheSize := fs.Int("cache-size", server.DefaultCacheSize,
		"entries in the cross-request result cache answering repeated identical anonymize requests (0 disables)")
	timeout := fs.Duration("timeout", server.DefaultRequestTimeout, "per-run anonymization timeout")
	maxBody := fs.Int64("max-body", server.DefaultMaxBodyBytes, "maximum request body size in bytes")
	dataDir := fs.String("data-dir", "",
		"durable storage directory: registry mutations are WAL-journaled and tables stored as mmap-served columnar snapshots; on boot the full registry is recovered from it (empty = in-memory only)")
	maxDatasets := fs.Int("max-datasets", server.DefaultMaxDatasets, "datasets the registry may hold")
	maxReleases := fs.Int("max-releases", server.DefaultMaxReleases, "stored releases the registry may hold")
	maxPolicies := fs.Int("max-policies", server.DefaultMaxPolicies, "stored policies the registry may hold")
	preload := fs.String("preload", "", "preload a synthetic dataset, e.g. census=5000 or hospital=10000")
	policySpec := fs.String("policy", "",
		"preload a stored policy from a JSON file, e.g. clinical=policy.json (name defaults to the file base name)")
	apiKeys := fs.String("api-keys", "",
		"API key file enabling tenant authentication: one \"<key> <tenant>\" pair per line (empty = unauthenticated)")
	tenantRate := fs.Float64("tenant-rate", 0,
		"per-tenant request rate limit in requests/second (0 disables)")
	tenantBurst := fs.Int("tenant-burst", 0,
		"per-tenant rate-limit burst size (0 = ceil(tenant-rate))")
	tenantMaxDatasets := fs.Int("tenant-max-datasets", 0,
		"datasets one tenant may store (0 disables the quota)")
	tenantMaxJobs := fs.Int("tenant-max-jobs", 0,
		"jobs one tenant may have queued+running at once (0 disables the quota)")
	quiet := fs.Bool("quiet", false, "disable request logging")
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, cap := range []struct {
		name  string
		value int
	}{
		{"-max-datasets", *maxDatasets},
		{"-max-releases", *maxReleases},
		{"-max-policies", *maxPolicies},
	} {
		if cap.value < 1 {
			return fmt.Errorf("serve: %s must be at least 1, got %d", cap.name, cap.value)
		}
	}
	cfg := server.Config{
		Addr:              *addr,
		Workers:           *workers,
		JobWorkers:        *jobWorkers,
		QueueDepth:        *queueDepth,
		JobTTL:            *jobTTL,
		RequestTimeout:    *timeout,
		MaxBodyBytes:      *maxBody,
		CacheSize:         *cacheSize,
		TenantRate:        *tenantRate,
		TenantBurst:       *tenantBurst,
		TenantMaxDatasets: *tenantMaxDatasets,
		TenantMaxJobs:     *tenantMaxJobs,
		DataDir:           *dataDir,
		MaxDatasets:       *maxDatasets,
		MaxReleases:       *maxReleases,
		MaxPolicies:       *maxPolicies,
	}
	if *apiKeys != "" {
		f, err := os.Open(*apiKeys)
		if err != nil {
			return fmt.Errorf("serve: -api-keys: %w", err)
		}
		keys, err := server.ParseAPIKeys(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("serve: -api-keys %s: %w", *apiKeys, err)
		}
		cfg.APIKeys = keys
	}
	// The flag's 0 means "off" (the natural CLI reading); the Config encodes
	// disabled as negative so its zero value keeps the default-on behavior.
	if *cacheSize == 0 {
		cfg.CacheSize = -1
	}
	if !*quiet {
		cfg.Log = log.New(os.Stderr, "", log.LstdFlags)
	}
	srv, err := server.Open(cfg)
	if err != nil {
		return err
	}
	if *preload != "" {
		switch seeded, err := preloadDataset(srv, *preload); {
		case err != nil:
			return err
		case !seeded && cfg.Log != nil:
			cfg.Log.Printf("preload %q skipped: dataset already recovered from %s", *preload, *dataDir)
		case cfg.Log != nil:
			cfg.Log.Printf("preloaded dataset %q", *preload)
		}
	}
	if *policySpec != "" {
		name, path, err := parsePolicyPreload(*policySpec)
		if err != nil {
			return err
		}
		pol, err := loadPolicyFile(path)
		if err != nil {
			return fmt.Errorf("serve: -policy: %w", err)
		}
		if err := srv.AddPolicy(name, pol); err != nil {
			return fmt.Errorf("serve: -policy: %w", err)
		}
		if cfg.Log != nil {
			cfg.Log.Printf("preloaded policy %q: %s", name, pol.Describe())
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return srv.ListenAndServe(ctx)
}

// preloadDataset registers a synthetic dataset before serving, so a fresh
// process answers anonymize calls without a prior upload. The spec is
// family[=rows]; the dataset is stored under the family name. A name already
// recovered from -data-dir is left alone (seeded=false) — regenerating over
// it would clash with the durable entry.
func preloadDataset(srv *server.Server, spec string) (seeded bool, err error) {
	family, rows := spec, 5000
	if name, val, ok := strings.Cut(spec, "="); ok {
		n, err := strconv.Atoi(val)
		if err != nil || n <= 0 {
			return false, fmt.Errorf("serve: -preload rows %q must be a positive integer", val)
		}
		family, rows = name, n
	}
	f, err := synth.FamilyByName(family)
	if err != nil {
		return false, fmt.Errorf("serve: -preload: %w", err)
	}
	if srv.HasDataset(f.Name) {
		return false, nil
	}
	return true, srv.AddDataset(f.Name, f.Name, f.Generate(rows, 42), f.Hierarchies())
}
