#!/bin/sh
# Sweeps GOMAXPROCS over the parallel-path benchmarks (the per-algorithm
# Workers1/WorkersMax pairs, the parallel Mondrian recursion, and the
# chunked scan kernels: GroupBy, Fingerprint, snapshot encode) and prints
# the speedup-per-core profile via `benchjson speedup`. The sweep is clamped
# to the host's cores: asking for more processors than exist measures
# scheduler thrash, not scaling.
#
# Environment:
#   GO       go command (default: go)
#   PROCS    core counts to sweep (default: "1 2 4")
#   OUT_DIR  where the per-count text and JSON records land (default: bench-cores)
set -eu

GO=${GO:-go}
PROCS=${PROCS:-"1 2 4"}
OUT_DIR=${OUT_DIR:-bench-cores}

PATTERN='BenchmarkMondrianParallel|BenchmarkDataflyWorkers|BenchmarkSamaratiWorkers|BenchmarkKMemberWorkers|BenchmarkAnatomyWorkers|BenchmarkTopDownWorkers|BenchmarkIncognitoWorkers|BenchmarkGroupByWorkers|BenchmarkFingerprintWorkers|BenchmarkSnapshotWriteWorkers'

avail=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
mkdir -p "$OUT_DIR"

files=""
for p in $PROCS; do
    if [ "$p" -gt "$avail" ]; then
        echo "bench-cores: skipping GOMAXPROCS=$p (host has $avail cores)" >&2
        continue
    fi
    echo "== GOMAXPROCS=$p" >&2
    GOMAXPROCS=$p $GO test -run '^$' -bench "$PATTERN" -benchmem ./... \
        >"$OUT_DIR/bench-p$p.txt"
    GOMAXPROCS=$p $GO run ./cmd/benchjson \
        <"$OUT_DIR/bench-p$p.txt" >"$OUT_DIR/bench-p$p.json"
    files="$files $OUT_DIR/bench-p$p.json"
done

case "$files" in
*json*json*) $GO run ./cmd/benchjson speedup $files ;;
*) echo "bench-cores: fewer than two core counts ran; no speedup table" >&2 ;;
esac
