// Package ppdp holds the repository-level benchmark harness: one testing.B
// benchmark per experiment of DESIGN.md (E1–E12), each regenerating the
// corresponding survey table/figure through the internal/experiments runners,
// plus micro-benchmarks for the hot paths (equivalence-class grouping,
// Mondrian partitioning, Laplace noise) that the experiments are built on.
//
// The experiment benchmarks run in "quick" mode so that `go test -bench=.`
// finishes in minutes; pass -ppdp.full to regenerate the full-size tables
// reported in EXPERIMENTS.md.
package ppdp

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"github.com/ppdp/ppdp/internal/algorithms/mondrian"
	"github.com/ppdp/ppdp/internal/dp"
	"github.com/ppdp/ppdp/internal/experiments"
	"github.com/ppdp/ppdp/internal/synth"
)

// fullRuns switches the experiment benchmarks from quick mode to the
// full-size configurations used for EXPERIMENTS.md.
var fullRuns = flag.Bool("ppdp.full", false, "run experiment benchmarks at full size")

// benchOptions returns the experiment options for benchmarks.
func benchOptions() experiments.Options {
	return experiments.Options{Quick: !*fullRuns, Seed: 42}
}

// benchExperiment runs one experiment per benchmark iteration and reports the
// result rows so the work cannot be optimized away.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	opt := benchOptions()
	b.ReportAllocs()
	rows := 0
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id, opt)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		rows += len(rep.Rows)
		if i == 0 && testing.Verbose() {
			rep.Print(benchWriter{b})
		}
	}
	b.ReportMetric(float64(rows)/float64(b.N), "result-rows")
}

// benchWriter adapts b.Log to io.Writer for verbose runs.
type benchWriter struct{ b *testing.B }

func (w benchWriter) Write(p []byte) (int, error) {
	w.b.Log(string(p))
	return len(p), nil
}

var _ io.Writer = benchWriter{}

// BenchmarkE1InfoLossVsK regenerates E1: information loss vs k for
// full-domain vs multidimensional recoding.
func BenchmarkE1InfoLossVsK(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2RuntimeVsN regenerates E2: runtime scaling with dataset size.
func BenchmarkE2RuntimeVsN(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3ClassificationVsK regenerates E3: classification accuracy vs k.
func BenchmarkE3ClassificationVsK(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4LDiversity regenerates E4: attribute disclosure under
// k-anonymity vs the l-diversity family.
func BenchmarkE4LDiversity(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5TCloseness regenerates E5: t-closeness vs l-diversity on a
// skewed sensitive attribute.
func BenchmarkE5TCloseness(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6AnatomyQueries regenerates E6: aggregate query error of Anatomy
// vs generalization.
func BenchmarkE6AnatomyQueries(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7DeltaPresence regenerates E7: δ-presence bounds vs
// generalization level.
func BenchmarkE7DeltaPresence(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8LinkageRisk regenerates E8: linkage-attack success vs k.
func BenchmarkE8LinkageRisk(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9DPQueryError regenerates E9: DP histogram error vs epsilon.
func BenchmarkE9DPQueryError(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10RandomizedResponse regenerates E10: randomized-response
// estimation error.
func BenchmarkE10RandomizedResponse(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11Dimensionality regenerates E11: information loss vs |QI|.
func BenchmarkE11Dimensionality(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12DPSynthetic regenerates E12: DP synthetic data vs k-anonymous
// release.
func BenchmarkE12DPSynthetic(b *testing.B) { benchExperiment(b, "E12") }

// --- micro-benchmarks ------------------------------------------------------

// BenchmarkGroupByQuasiIdentifier measures the cost of equivalence-class
// grouping, the primitive every privacy check depends on.
func BenchmarkGroupByQuasiIdentifier(b *testing.B) {
	tbl := synth.Census(5000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.GroupByQuasiIdentifier(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMondrianK10 measures one full Mondrian run on 5k census rows.
func BenchmarkMondrianK10(b *testing.B) {
	tbl := synth.Census(5000, 1)
	hs := synth.CensusHierarchies()
	qi := []string{"age", "sex", "education", "marital-status", "race"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mondrian.Anonymize(tbl, mondrian.Config{K: 10, QuasiIdentifiers: qi, Hierarchies: hs}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupByCoded measures coded equivalence-class grouping across row
// counts, including the first-call cost of building the dictionary-encoded
// columns (the table is rebuilt per sub-benchmark, the columns are cached
// across iterations exactly as they are in real pipelines).
func BenchmarkGroupByCoded(b *testing.B) {
	for _, rows := range []int{1000, 5000, 20000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			tbl := synth.Census(rows, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tbl.GroupByQuasiIdentifier(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchGroupByWorkers measures the chunked grouping kernel on the 5k census
// fixture at a fixed scan-worker bound (0 resolves to GOMAXPROCS, so the Max
// variant tracks the host in the bench-cores sweep).
func benchGroupByWorkers(b *testing.B, workers int) {
	tbl := synth.Census(5000, 1)
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tbl.SetScanWorkers(workers)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.GroupByQuasiIdentifier(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupByWorkers1(b *testing.B)   { benchGroupByWorkers(b, 1) }
func BenchmarkGroupByWorkersMax(b *testing.B) { benchGroupByWorkers(b, 0) }

// BenchmarkGroupByCutoffSmall groups a table below the parallel.MinChunk
// threshold with the maximal worker bound: the small-n cutoff must keep it
// at sequential cost (compare with BenchmarkGroupByCoded/rows=1000 at zero
// workers — no goroutine or channel overhead may appear).
func BenchmarkGroupByCutoffSmall(b *testing.B) {
	tbl := synth.Census(1000, 1)
	tbl.SetScanWorkers(runtime.GOMAXPROCS(0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.GroupByQuasiIdentifier(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFingerprintWorkers measures a full row-content rebuild per iteration:
// rewriting a cell with its own value drops the cached hash without changing
// the content, so every Fingerprint call re-hashes all 5k rows.
func benchFingerprintWorkers(b *testing.B, workers int) {
	tbl := synth.Census(5000, 1)
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tbl.SetScanWorkers(workers)
	want := tbl.Fingerprint()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := tbl.Value(0, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := tbl.SetValue(0, 0, v); err != nil {
			b.Fatal(err)
		}
		if got := tbl.Fingerprint(); got != want {
			b.Fatalf("fingerprint drifted: %s != %s", got, want)
		}
	}
}

func BenchmarkFingerprintWorkers1(b *testing.B)   { benchFingerprintWorkers(b, 1) }
func BenchmarkFingerprintWorkersMax(b *testing.B) { benchFingerprintWorkers(b, 0) }

// BenchmarkMondrianParallel measures full Mondrian runs across row counts
// and worker-pool sizes (workers=1 is the sequential baseline; workers=0
// uses GOMAXPROCS).
func BenchmarkMondrianParallel(b *testing.B) {
	hs := synth.CensusHierarchies()
	qi := []string{"age", "sex", "education", "marital-status", "race"}
	for _, rows := range []int{2000, 5000, 20000} {
		tbl := synth.Census(rows, 1)
		for _, workers := range []int{1, 0} {
			name := fmt.Sprintf("rows=%d/workers=%d", rows, workers)
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cfg := mondrian.Config{K: 10, QuasiIdentifiers: qi, Hierarchies: hs, Workers: workers}
					if _, err := mondrian.Anonymize(tbl, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkLaplaceRelease measures the Laplace mechanism noise path.
func BenchmarkLaplaceRelease(b *testing.B) {
	mech, err := dp.NewLaplace(1.0, 1.0, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += mech.Release(100)
	}
	_ = sink
}

// BenchmarkSyntheticCensus measures the synthetic data generator itself so
// that experiment timings can be decomposed.
func BenchmarkSyntheticCensus(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tbl := synth.Census(2000, int64(i)); tbl.Len() != 2000 {
			b.Fatal("bad generator output")
		}
	}
}
