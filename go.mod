module github.com/ppdp/ppdp

go 1.22
