// Command census-dp demonstrates the differential-privacy end of the PPDP
// spectrum: publishing noisy histograms and fully synthetic census microdata
// under an explicit epsilon budget, and comparing what analysts can still
// learn from them against the raw data and a k-anonymized release.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/ppdp/ppdp/internal/algorithms/mondrian"
	"github.com/ppdp/ppdp/internal/classify"
	"github.com/ppdp/ppdp/internal/dp"
	"github.com/ppdp/ppdp/internal/metrics"
	"github.com/ppdp/ppdp/internal/synth"
)

func main() {
	original := synth.Census(4000, 3)
	rng := rand.New(rand.NewSource(3))

	// Privacy accounting: one total budget split across the releases below.
	acct, err := dp.NewAccountant(2.0)
	if err != nil {
		log.Fatal(err)
	}

	// 1. A differentially private histogram of education x salary.
	hist, err := dp.ReleaseHistogram(original, dp.HistogramConfig{
		Attributes:  []string{"education", "salary"},
		Epsilon:     0.5,
		PostProcess: true,
		Rng:         rng,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := acct.Spend(0.5); err != nil {
		log.Fatal(err)
	}
	trueHigh, _ := metrics.ExactCount(original, metrics.CountQuery{Conditions: []metrics.Condition{
		{Attribute: "education", Equals: "doctorate"},
		{Attribute: "salary", Equals: ">50k"},
	}})
	fmt.Printf("doctorate & >50k: true=%d noisy=%.1f (epsilon=0.5)\n", trueHigh, hist.Count("doctorate", ">50k"))

	// 2. DP synthetic microdata for downstream modelling.
	synTable, release, err := dp.Synthesize(original, dp.SyntheticConfig{
		Attributes: []string{"salary", "education", "marital-status", "sex"},
		Root:       "salary",
		Epsilon:    1.5,
		Rng:        rng,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := acct.Spend(release.Epsilon); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic table: %d rows, budget spent %.2f of %.2f\n", synTable.Len(), acct.Spent(), acct.Spent()+acct.Remaining())

	// 3. Compare classification utility: raw vs k-anonymous vs DP synthetic.
	features := []string{"education", "marital-status", "sex"}
	label := "salary"
	rawEval, err := classify.SplitEvaluate(&classify.NaiveBayes{}, original, features, label, 0.7, 9)
	if err != nil {
		log.Fatal(err)
	}
	kres, err := mondrian.Anonymize(original, mondrian.Config{K: 10, QuasiIdentifiers: features})
	if err != nil {
		log.Fatal(err)
	}
	kTrain, kTest := kres.Table.Split(0.7, rng)
	kEval, err := classify.Evaluate(&classify.NaiveBayes{}, kTrain, kTest, features, label)
	if err != nil {
		log.Fatal(err)
	}
	_, rawTest := original.Split(0.7, rng)
	synEval, err := classify.Evaluate(&classify.NaiveBayes{}, synTable, rawTest, features, label)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive-bayes accuracy: raw=%.3f k-anonymous=%.3f dp-synthetic=%.3f (majority baseline=%.3f)\n",
		rawEval.Accuracy, kEval.Accuracy, synEval.Accuracy, rawEval.BaselineAccuracy)

	// 4. Local differential privacy: randomized response on the salary class.
	rr, err := dp.NewRandomizedResponse(1.0, []string{"<=50k", ">50k"}, rng)
	if err != nil {
		log.Fatal(err)
	}
	col, _ := original.Column("salary")
	est := rr.EstimateFrequencies(rr.PerturbAll(col))
	freq, _ := original.Frequencies("salary")
	fmt.Printf("randomized response (eps=1): true >50k=%d estimated=%.1f\n", freq[">50k"], est[">50k"])
}
