// Command http-service drives the ppdp HTTP anonymization service end to
// end, the way an operator would with curl: start a server, check liveness,
// upload a CSV dataset, anonymize it twice (Mondrian with l-diversity, then
// Anatomy), store a declarative privacy policy and anonymize by policy_ref,
// fetch the stored release's risk and utility reports, and run the
// background-job flow — submit, poll state and progress, fetch the published
// release, cancel.
//
// The server runs in-process on a loopback port, but every interaction goes
// through real HTTP — the same requests work against `ppdp serve`.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"github.com/ppdp/ppdp/internal/server"
	"github.com/ppdp/ppdp/internal/synth"
)

func main() {
	// 1. Start the service on a loopback listener, as `ppdp serve` would.
	srv := server.New(server.Config{Workers: 2, RequestTimeout: 30 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	base := "http://" + ln.Addr().String()
	ctx, stop := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	fmt.Printf("service listening on %s\n\n", base)

	// 2. Liveness, as a load balancer would poll it.
	var health struct {
		Status   string `json:"status"`
		Datasets int    `json:"datasets"`
	}
	getJSON(base+"/healthz", &health)
	fmt.Printf("healthz: status=%s datasets=%d\n", health.Status, health.Datasets)

	// 3. Upload a dataset as CSV. Any census-schema CSV works; here the
	// synthetic generator stands in for your own microdata.
	var csvBuf bytes.Buffer
	if err := synth.Census(2000, 1).WriteCSV(&csvBuf); err != nil {
		log.Fatalf("build csv: %v", err)
	}
	req, err := http.NewRequest(http.MethodPut, base+"/v1/datasets/people?family=census", &csvBuf)
	if err != nil {
		log.Fatal(err)
	}
	var uploaded struct {
		Name             string   `json:"name"`
		Rows             int      `json:"rows"`
		QuasiIdentifiers []string `json:"quasi_identifiers"`
	}
	doJSON(req, &uploaded)
	fmt.Printf("uploaded: %d rows, quasi-identifier %v\n\n", uploaded.Rows, uploaded.QuasiIdentifiers)

	// 4. Anonymize: Mondrian k=10 with distinct 2-diversity on salary, and
	// store the release so the report endpoints can find it.
	var rel struct {
		ReleaseID    string  `json:"release_id"`
		Rows         int     `json:"rows"`
		ElapsedMS    float64 `json:"elapsed_ms"`
		Measurements struct {
			K         int     `json:"k"`
			DistinctL int     `json:"distinct_l"`
			NCP       float64 `json:"ncp"`
		} `json:"measurements"`
	}
	postJSON(base+"/v1/anonymize", map[string]any{
		"dataset": "people", "algorithm": "mondrian",
		"k": 10, "l": 2, "sensitive": "salary", "store": true,
	}, &rel)
	fmt.Printf("mondrian release %s: %d rows in %.1fms, measured k=%d l=%d NCP=%.3f\n",
		rel.ReleaseID, rel.Rows, rel.ElapsedMS,
		rel.Measurements.K, rel.Measurements.DistinctL, rel.Measurements.NCP)

	// 4b. The same criteria as a stored declarative policy: declare once
	// under a name, then anonymize by policy_ref. The response echoes the
	// canonical policy and a per-criterion verification; the run pins the
	// stored document, so deleting the name later never changes what this
	// release enforced.
	var storedPol struct {
		Name    string `json:"name"`
		Summary string `json:"summary"`
	}
	postJSON(base+"/v1/policies", map[string]any{
		"name": "salary-baseline",
		"policy": map[string]any{
			"criteria": []map[string]any{
				{"type": "k-anonymity", "k": 10},
				{"type": "distinct-l-diversity", "l": 2, "sensitive": "salary"},
			},
		},
	}, &storedPol)
	fmt.Printf("stored policy %q: %s\n", storedPol.Name, storedPol.Summary)
	var polRel struct {
		ReleaseID    string `json:"release_id"`
		PolicyRef    string `json:"policy_ref"`
		Measurements struct {
			Criteria map[string]struct {
				Satisfied bool    `json:"satisfied"`
				Measured  float64 `json:"measured"`
				Target    float64 `json:"target"`
			} `json:"criteria"`
		} `json:"measurements"`
	}
	postJSON(base+"/v1/anonymize", map[string]any{
		"dataset": "people", "policy_ref": "salary-baseline", "store": true,
	}, &polRel)
	fmt.Printf("policy_ref release %s (policy %s):\n", polRel.ReleaseID, polRel.PolicyRef)
	for typ, m := range polRel.Measurements.Criteria {
		fmt.Printf("  %-22s satisfied=%v measured=%.3g target=%.3g\n", typ, m.Satisfied, m.Measured, m.Target)
	}
	fmt.Println()

	// 5. Risk report for the stored release.
	var risk struct {
		ProsecutorMax float64 `json:"prosecutor_max"`
		RecordsAtRisk float64 `json:"records_at_risk"`
		Sensitive     []struct {
			Attribute         string  `json:"attribute"`
			ExpectedGuessRate float64 `json:"expected_guess_rate"`
			BaselineGuessRate float64 `json:"baseline_guess_rate"`
		} `json:"sensitive"`
	}
	getJSON(base+"/v1/releases/"+rel.ReleaseID+"/risk?threshold=0.2", &risk)
	fmt.Printf("risk: prosecutor-max=%.4f records-at-risk=%.4f\n", risk.ProsecutorMax, risk.RecordsAtRisk)
	for _, s := range risk.Sensitive {
		fmt.Printf("risk[%s]: guess-rate=%.4f baseline=%.4f\n",
			s.Attribute, s.ExpectedGuessRate, s.BaselineGuessRate)
	}

	// 6. Utility report: how much information the release retains.
	var util struct {
		NCP                    float64 `json:"ncp"`
		Discernibility         float64 `json:"discernibility"`
		NormalizedAvgClassSize float64 `json:"normalized_avg_class_size"`
	}
	getJSON(base+"/v1/releases/"+rel.ReleaseID+"/utility", &util)
	fmt.Printf("utility: NCP=%.3f discernibility=%.0f C_avg=%.3f\n\n",
		util.NCP, util.Discernibility, util.NormalizedAvgClassSize)

	// 7. Error envelopes are structured: Anatomy cannot 2-diversify the
	// binary salary column (80% of records share one value), and the service
	// says so with a machine-readable code instead of a 500.
	status, envelope := postJSONExpectError(base+"/v1/anonymize", map[string]any{
		"dataset": "people", "algorithm": "anatomy", "l": 2,
	})
	fmt.Printf("anatomy on salary: HTTP %d code=%q\n\n", status, envelope.Error.Code)

	// 8. A dataset Anatomy can serve: generate a hospital table server-side
	// (the JSON sibling of the CSV upload) and bucketize its 10-ary
	// diagnosis column.
	var gen struct {
		Name string `json:"name"`
		Rows int    `json:"rows"`
	}
	postJSON(base+"/v1/datasets", map[string]any{
		"name": "clinic", "family": "hospital", "rows": 2000, "seed": 7,
	}, &gen)
	var anat struct {
		ReleaseID string `json:"release_id"`
		Rows      int    `json:"rows"`
	}
	postJSON(base+"/v1/anonymize", map[string]any{
		"dataset": "clinic", "algorithm": "anatomy", "l": 3, "store": true,
	}, &anat)
	fmt.Printf("anatomy release %s: %d rows (download QIT/ST via /v1/releases/%s/data?table=qit|st)\n",
		anat.ReleaseID, anat.Rows, anat.ReleaseID)

	// 9. Background job: the same request body as /v1/anonymize, submitted
	// asynchronously through the same executor. Poll for state and live
	// progress, then use the published release like any other.
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	postJSON(base+"/v1/jobs", map[string]any{
		"dataset": "clinic", "algorithm": "mondrian", "k": 10,
	}, &job)
	fmt.Printf("job %s submitted (state %s)\n", job.ID, job.State)
	var snap struct {
		State     string `json:"state"`
		ReleaseID string `json:"release_id"`
		Progress  struct {
			Done    int     `json:"done"`
			Total   int     `json:"total"`
			Percent float64 `json:"percent"`
		} `json:"progress"`
	}
	for {
		getJSON(base+"/v1/jobs/"+job.ID, &snap)
		if snap.State == "succeeded" || snap.State == "failed" || snap.State == "canceled" {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("job %s: %s at %d/%d units, published release %s\n",
		job.ID, snap.State, snap.Progress.Done, snap.Progress.Total, snap.ReleaseID)

	// 10. Cancellation: submit the slow quadratic clustering, then ask it to
	// stop. The algorithm observes the cancel at its next unit of work and a
	// canceled job never publishes a release (a job that already finished
	// answers 409 instead).
	postJSON(base+"/v1/jobs", map[string]any{
		"dataset": "people", "algorithm": "kmember", "k": 5,
	}, &job)
	cancelReq, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+job.ID, nil)
	if err != nil {
		log.Fatal(err)
	}
	cancelResp, err := http.DefaultClient.Do(cancelReq)
	if err != nil {
		log.Fatalf("DELETE /v1/jobs/%s: %v", job.ID, err)
	}
	io.Copy(io.Discard, cancelResp.Body)
	cancelResp.Body.Close()
	for {
		getJSON(base+"/v1/jobs/"+job.ID, &snap)
		if snap.State == "succeeded" || snap.State == "failed" || snap.State == "canceled" {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("cancel job %s: HTTP %d, settled state %q\n\n", job.ID, cancelResp.StatusCode, snap.State)

	// 11. Graceful shutdown, as SIGTERM would trigger under `ppdp serve`.
	stop()
	if err := <-done; err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	fmt.Println("server shut down cleanly")
}

// getJSON fetches a URL and decodes the JSON response into out.
func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
	decode(resp, url, out)
}

// postJSON sends a JSON body and decodes the JSON response into out.
func postJSON(url string, body, out any) {
	buf, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatalf("POST %s: %v", url, err)
	}
	decode(resp, url, out)
}

// apiErrorEnvelope mirrors the service's uniform error body.
type apiErrorEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// postJSONExpectError sends a JSON body expecting an error status and
// returns the decoded envelope.
func postJSONExpectError(url string, body any) (int, apiErrorEnvelope) {
	buf, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("%s: read: %v", url, err)
	}
	if resp.StatusCode < 300 {
		log.Fatalf("%s: expected an error status, got %d: %s", url, resp.StatusCode, raw)
	}
	var env apiErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code == "" {
		log.Fatalf("%s: malformed error envelope: %s", url, raw)
	}
	return resp.StatusCode, env
}

// doJSON executes a custom request and decodes the JSON response into out.
func doJSON(req *http.Request, out any) {
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatalf("%s %s: %v", req.Method, req.URL, err)
	}
	decode(resp, req.URL.String(), out)
}

func decode(resp *http.Response, url string, out any) {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("%s: read: %v", url, err)
	}
	if resp.StatusCode >= 300 {
		log.Fatalf("%s: status %d: %s", url, resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		log.Fatalf("%s: decode: %v (%s)", url, err, raw)
	}
}
