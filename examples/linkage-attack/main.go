// Command linkage-attack reproduces Sweeney's famous voter-list scenario: an
// adversary who holds an identified register (name + quasi-identifiers) joins
// it against a published hospital table to re-identify patients. The example
// runs the attack against the raw release and against k-anonymized releases
// of increasing strength, showing how the match sets blur.
package main

import (
	"fmt"
	"log"

	"github.com/ppdp/ppdp/internal/algorithms/mondrian"
	"github.com/ppdp/ppdp/internal/risk"
	"github.com/ppdp/ppdp/internal/synth"
)

func main() {
	// The hospital's private data and the public register the attacker buys.
	private := synth.Hospital(2000, 5)
	register, err := synth.IdentifiedRegister(private, 0.3, 200, 6)
	if err != nil {
		log.Fatal(err)
	}
	hs := synth.HospitalHierarchies()
	fmt.Printf("private table: %d rows; identified register: %d rows (30%% true members + decoys)\n\n",
		private.Len(), register.Len())

	attack := func(name string, k int) {
		released := private
		if k <= 1 {
			var err error
			released, err = private.DropIdentifiers()
			if err != nil {
				log.Fatal(err)
			}
		} else {
			res, err := mondrian.Anonymize(private, mondrian.Config{K: k, Hierarchies: hs})
			if err != nil {
				log.Fatalf("k=%d: %v", k, err)
			}
			released = res.Table
		}
		result, err := risk.LinkageAttack(released, register, hs)
		if err != nil {
			log.Fatal(err)
		}
		reid, err := risk.MeasureReidentification(released, 0.2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s unique-links=%-5d expected-reid=%-8.1f avg-match-set=%-8.1f prosecutor-max=%.3f\n",
			name, result.UniqueLinks, result.ExpectedReidentifications, result.AverageMatchSize, reid.ProsecutorMax)
	}

	attack("raw release (k=1)", 1)
	for _, k := range []int{2, 5, 10, 25} {
		attack(fmt.Sprintf("mondrian k=%d", k), k)
	}

	fmt.Println("\nattribute disclosure left open by pure k-anonymity:")
	res, err := mondrian.Anonymize(private, mondrian.Config{K: 10, Hierarchies: hs})
	if err != nil {
		log.Fatal(err)
	}
	h, err := risk.HomogeneityAttack(res.Table, "diagnosis")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k=10: %.2f%% of patients sit in diagnosis-homogeneous classes; attacker guess rate %.3f\n",
		100*h.FullyDisclosed, h.ExpectedGuessRate)
	fmt.Println("(run the hospital-release example to see how l-diversity and t-closeness close this gap)")
}
