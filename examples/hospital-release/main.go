// Command hospital-release walks through the survey's motivating scenario: a
// hospital must publish discharge microdata for research while preventing
// both re-identification and attribute disclosure of the diagnosis column.
// It contrasts k-anonymity alone, l-diversity and t-closeness, quantifying
// the homogeneity attack each one leaves open, and finally publishes an
// Anatomy bucketization for the analysts who only need aggregate statistics.
package main

import (
	"fmt"
	"log"

	"github.com/ppdp/ppdp/internal/algorithms/anatomy"
	"github.com/ppdp/ppdp/internal/algorithms/mondrian"
	"github.com/ppdp/ppdp/internal/metrics"
	"github.com/ppdp/ppdp/internal/privacy"
	"github.com/ppdp/ppdp/internal/risk"
	"github.com/ppdp/ppdp/internal/synth"
)

func main() {
	original := synth.Hospital(3000, 7)
	hs := synth.HospitalHierarchies()
	const sensitive = "diagnosis"

	baseline, err := risk.BaselineGuessRate(original, sensitive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hospital discharge table: %d rows; attacker baseline guess rate %.3f\n\n", original.Len(), baseline)

	show := func(name string, extra []privacy.Criterion) {
		res, err := mondrian.Anonymize(original, mondrian.Config{K: 10, Hierarchies: hs, Extra: extra})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		attack, err := risk.HomogeneityAttack(res.Table, sensitive)
		if err != nil {
			log.Fatal(err)
		}
		ncp, err := metrics.NCP(original, res.Table, hs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s partitions=%-4d fully-disclosed=%.4f guess-rate=%.4f NCP=%.4f\n",
			name, len(res.Groups), attack.FullyDisclosed, attack.ExpectedGuessRate, ncp)
	}

	show("k=10 only", nil)
	show("k=10 + distinct 3-diversity", []privacy.Criterion{
		privacy.DistinctLDiversity{L: 3, Sensitive: sensitive},
	})
	show("k=10 + 0.25-closeness", []privacy.Criterion{
		privacy.TCloseness{T: 0.25, Sensitive: sensitive},
	})

	// Anatomy for the aggregate-analysis consumers: QI values stay exact.
	anat, err := anatomy.Anonymize(original, anatomy.Config{L: 3, Sensitive: sensitive})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanatomy release: %d groups, QIT %d rows, ST %d rows\n",
		len(anat.Groups), anat.QIT.Len(), anat.ST.Len())

	// Answer an epidemiologist's query from the anatomized release and
	// compare with the truth.
	q := metrics.CountQuery{Conditions: []metrics.Condition{
		{Attribute: "age", IsRange: true, Lo: 60, Hi: 100},
		{Attribute: sensitive, Equals: "heart-disease"},
	}}
	truth, err := metrics.ExactCount(original, q)
	if err != nil {
		log.Fatal(err)
	}
	ageIdx := -1
	for i, a := range anat.QuasiIdentifiers {
		if a == "age" {
			ageIdx = i
		}
	}
	est := anat.EstimateCount(func(qi []string) bool {
		var age float64
		if _, err := fmt.Sscanf(qi[ageIdx], "%f", &age); err != nil {
			return false
		}
		return age >= 60
	}, "heart-disease")
	fmt.Printf("query %q: truth=%d anatomy-estimate=%.1f\n", q.String(), truth, est)
}
