// Command quickstart shows the smallest useful PPDP pipeline: generate a
// census-style table, anonymize it with Mondrian k-anonymity through the core
// API, verify the release, and report the measured privacy and utility.
package main

import (
	"fmt"
	"log"

	"github.com/ppdp/ppdp/internal/core"
	"github.com/ppdp/ppdp/internal/synth"
)

func main() {
	// 1. Obtain microdata. In a real deployment this is your own table; the
	// synthetic census generator mirrors the UCI Adult schema.
	original := synth.Census(2000, 1)
	fmt.Printf("original table: %d rows, %d columns\n", original.Len(), original.Schema().Len())
	fmt.Printf("quasi-identifier: %v\n", original.Schema().QuasiIdentifierNames())
	fmt.Printf("sensitive: %v\n\n", original.Schema().SensitiveNames())

	// 2. Configure the anonymizer: Mondrian multidimensional recoding with
	// k=10 and distinct 2-diversity on the salary class.
	anon, err := core.New(core.Config{
		Algorithm:   core.Mondrian,
		K:           10,
		L:           2,
		Sensitive:   "salary",
		Hierarchies: synth.CensusHierarchies(),
	})
	if err != nil {
		log.Fatalf("configure: %v", err)
	}

	// 3. Anonymize. Direct identifiers are dropped automatically and the
	// release is measured.
	release, err := anon.Anonymize(original)
	if err != nil {
		log.Fatalf("anonymize: %v", err)
	}
	fmt.Printf("released table: %d rows\n", release.Table.Len())
	fmt.Printf("measured k           : %d\n", release.Measured.K)
	fmt.Printf("measured distinct l  : %d\n", release.Measured.DistinctL)
	fmt.Printf("prosecutor max risk  : %.4f\n", release.Measured.ProsecutorMaxRisk)
	fmt.Printf("information loss NCP : %.4f\n", release.Measured.NCP)

	// 4. Verify explicitly (the same check a data-protection officer would
	// script before sign-off).
	ok, failed, err := anon.Verify(release.Table)
	if err != nil {
		log.Fatalf("verify: %v", err)
	}
	if !ok {
		log.Fatalf("release violates %s", failed)
	}
	fmt.Println("\nrelease verified: k-anonymity and l-diversity hold")

	// 5. Peek at the released data.
	fmt.Println("\nfirst released rows:")
	fmt.Println(release.Table.String())
}
