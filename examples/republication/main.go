// Command republication demonstrates the dynamic-publishing problem: a
// hospital re-publishes its discharge table every quarter as new patients
// arrive. Individually each release is diverse, but an attacker can intersect
// the sensitive-value sets of a patient's buckets across releases. The
// example publishes three m-invariant releases and shows that the
// intersection attack learns nothing, then contrasts it with a naive pair of
// independent releases where the attack succeeds.
package main

import (
	"fmt"
	"log"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/republish"
	"github.com/ppdp/ppdp/internal/synth"
)

func main() {
	full := synth.Hospital(1200, 11)

	pub, err := republish.NewPublisher(republish.Config{M: 3, ID: "name"})
	if err != nil {
		log.Fatal(err)
	}
	var releases []*republish.Release
	for quarter, n := range []int{400, 800, 1200} {
		snapshot := firstRows(full, n)
		rel, err := pub.Publish(snapshot)
		if err != nil {
			log.Fatalf("quarter %d: %v", quarter+1, err)
		}
		releases = append(releases, rel)
		fmt.Printf("release %d: %d QIT rows (%d counterfeit), %d sensitive-table rows\n",
			rel.Version, rel.QIT.Len(), rel.Counterfeits, rel.ST.Len())
	}

	ok, why, err := republish.CheckInvariance(releases, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreleases 3-invariant: %v %s\n", ok, why)

	disclosed, avg := republish.IntersectionAttack(releases[0], releases[2])
	fmt.Printf("intersection attack release 1 x release 3: disclosed=%.4f avg-candidate-set=%.2f\n", disclosed, avg)

	// Naive comparison: two releases whose buckets are formed independently
	// give the attacker shrinking candidate sets.
	naiveA := &republish.Release{Version: 1, Signatures: map[string][]string{
		"patient-000001": {"flu", "hiv"},
	}}
	naiveB := &republish.Release{Version: 2, Signatures: map[string][]string{
		"patient-000001": {"hiv", "cancer"},
	}}
	d, a := republish.IntersectionAttack(naiveA, naiveB)
	fmt.Printf("naive independent releases:                 disclosed=%.4f avg-candidate-set=%.2f\n", d, a)
	fmt.Println("\nwith m-invariance every republished patient keeps the same sensitive candidate set forever;")
	fmt.Println("without it, intersecting two releases pins the patient's diagnosis exactly.")
}

// firstRows returns the table state after the first n admissions.
func firstRows(t *dataset.Table, n int) *dataset.Table {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	out, err := t.Select(idx)
	if err != nil {
		log.Fatal(err)
	}
	return out
}
