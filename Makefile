GO ?= go

.PHONY: all build test vet race fmt-check linkcheck api-docs api-docs-check serve bench bench-compare bench-cores bench-quick bench-full fuzz ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fail when any file needs gofmt (mirrors the CI Format step).
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

# Verify relative links in the documentation resolve.
linkcheck:
	$(GO) run ./cmd/mdlinkcheck README.md CHANGES.md ROADMAP.md docs

# Regenerate docs/API.md from the route table, the policy schema and the
# engine registry (see cmd/apidocs).
api-docs:
	$(GO) run ./cmd/apidocs > docs/API.md

# Fail when docs/API.md is stale (mirrors the CI step and the in-tree
# TestAPIDocsCurrent).
api-docs-check:
	@$(GO) run ./cmd/apidocs | diff -u docs/API.md - \
		|| { echo "docs/API.md is stale: run 'make api-docs' and commit the result" >&2; exit 1; }

# Run the HTTP anonymization service with a preloaded census table.
serve:
	$(GO) run ./cmd/ppdp serve -preload census=5000

# Race-detector run; also exercises the parallel Mondrian recursion.
race:
	$(GO) test -race ./...

# Hot-path benchmarks with memory stats, recorded as JSON so the perf
# trajectory is tracked per PR (see the non-gating CI bench job). The file
# name carries the PR number that introduced the recording; bench-compare
# diffs the fresh numbers against the previous PR's committed baseline.
BENCH_OUT ?= BENCH_PR10.json
BENCH_BASELINE ?= BENCH_PR9.json
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkGroupBy|BenchmarkFingerprint|BenchmarkMondrian|BenchmarkIncognito|BenchmarkTopDown|BenchmarkDatafly|BenchmarkSamarati|BenchmarkKMember|BenchmarkAnatomy|BenchmarkLaplace|BenchmarkServeAnonymize|BenchmarkJobThroughput|BenchmarkCacheHit|BenchmarkReadCSV|BenchmarkSnapshot|BenchmarkMmap|BenchmarkStore|BenchmarkReconcile' \
		-benchmem ./... > bench.out || { cat bench.out; rm -f bench.out; exit 1; }
	cat bench.out
	$(GO) run ./cmd/benchjson < bench.out > $(BENCH_OUT)
	@rm -f bench.out
	@echo "wrote $(BENCH_OUT)"

# Per-benchmark ns/op and allocs/op deltas against the previous PR's
# baseline; exits non-zero on a >10% regression (CI keeps this non-gating).
bench-compare:
	$(GO) run ./cmd/benchjson compare $(BENCH_BASELINE) $(BENCH_OUT)

# GOMAXPROCS sweep over the parallel-path benchmarks (the per-algorithm
# Workers1/WorkersMax pairs and the parallel Mondrian recursion), clamped to
# the host's cores; prints the speedup-per-core table via `benchjson speedup`.
bench-cores:
	sh scripts/bench_cores.sh

# Coverage-guided fuzzing of the dual-path CSV reader against pure
# encoding/csv: error presence, every cell and the content fingerprint must
# agree. The committed corpora under internal/dataset/testdata/fuzz replay in
# every ordinary `go test` run; this target keeps exploring.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/dataset -run '^$$' -fuzz 'FuzzReadCSV$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dataset -run '^$$' -fuzz 'FuzzReadCSVInferred$$' -fuzztime $(FUZZTIME)

# Micro-benchmarks for the hot paths (quick mode, ~1 minute).
bench-quick:
	$(GO) test -run '^$$' -bench 'BenchmarkGroupBy|BenchmarkMondrian|BenchmarkLaplace' -benchmem .

# Full experiment benchmark suite (regenerates EXPERIMENTS.md-scale tables).
bench-full:
	$(GO) test -run '^$$' -bench . -benchmem -ppdp.full .

ci: build fmt-check vet linkcheck api-docs-check test race
