GO ?= go

.PHONY: all build test vet race fmt-check linkcheck serve bench-quick bench-full ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fail when any file needs gofmt (mirrors the CI Format step).
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

# Verify relative links in the documentation resolve.
linkcheck:
	$(GO) run ./cmd/mdlinkcheck README.md CHANGES.md ROADMAP.md docs

# Run the HTTP anonymization service with a preloaded census table.
serve:
	$(GO) run ./cmd/ppdp serve -preload census=5000

# Race-detector run; also exercises the parallel Mondrian recursion.
race:
	$(GO) test -race ./...

# Micro-benchmarks for the hot paths (quick mode, ~1 minute).
bench-quick:
	$(GO) test -run '^$$' -bench 'BenchmarkGroupBy|BenchmarkMondrian|BenchmarkLaplace' -benchmem .

# Full experiment benchmark suite (regenerates EXPERIMENTS.md-scale tables).
bench-full:
	$(GO) test -run '^$$' -bench . -benchmem -ppdp.full .

ci: build fmt-check vet linkcheck test race
