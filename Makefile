GO ?= go

.PHONY: all build test vet race bench-quick bench-full ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector run; also exercises the parallel Mondrian recursion.
race:
	$(GO) test -race ./...

# Micro-benchmarks for the hot paths (quick mode, ~1 minute).
bench-quick:
	$(GO) test -run '^$$' -bench 'BenchmarkGroupBy|BenchmarkMondrian|BenchmarkLaplace' -benchmem .

# Full experiment benchmark suite (regenerates EXPERIMENTS.md-scale tables).
bench-full:
	$(GO) test -run '^$$' -bench . -benchmem -ppdp.full .

ci: build vet test race
